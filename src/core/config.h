// H-ORAM configuration (the knobs of §4 and §5 of the paper).
#ifndef HORAM_CORE_CONFIG_H
#define HORAM_CORE_CONFIG_H

#include <cstdint>
#include <vector>

#include "runtime/runtime_policy.h"
#include "sim/time.h"
#include "storage/page_layout.h"
#include "util/contracts.h"
#include "util/math.h"

namespace horam {

/// One scheduler stage (§4.2): while this stage is active the scheduler
/// groups `c` in-memory accesses with each storage load. The paper's
/// experiment uses {c=1 for 20%, c=3 for 13%, c=5 for 67%} of each
/// access period.
struct scheduler_stage {
  std::uint32_t c = 1;
  double fraction = 1.0;
};

/// Shuffle execution policies.
enum class shuffle_policy : std::uint8_t {
  /// Foreground: the shuffle's full device time extends the run
  /// (honest accounting, used for Tables 5-3 / 5-4).
  foreground,
  /// Writes are absorbed by a write-back cache and flushed with
  /// otherwise-idle device time during the next access period; leftover
  /// debt stalls the next shuffle (models the page-cache behaviour of
  /// the paper's testbed).
  async_writeback,
  /// The shuffle runs entirely off the critical path (remote server /
  /// off-line hours — the paper's Figure 5-2 non-shuffle case).
  offloaded,
  /// Deamortized: the shuffle becomes an incremental backend job
  /// (oram_backend::begin_shuffle) whose slices run between access
  /// rounds, each bounded by shuffle_slice_budget device time, so no
  /// tenant ever sees the stop-the-world latency cliff. An unbounded
  /// budget (0) degenerates to the foreground machine bit for bit.
  incremental,
};

/// Static parameters of an H-ORAM instance.
struct horam_config {
  /// Real data blocks protected (N).
  std::uint64_t block_count = 0;
  /// Capacity of the in-memory ORAM tree in blocks (n); the access
  /// period allows n/2 storage loads (§4.1.2).
  std::uint64_t memory_blocks = 0;
  /// Application payload bytes per block.
  std::size_t payload_bytes = 0;
  /// Block size used for device timing (the paper uses 1 KB blocks);
  /// 0 = encoded record size.
  std::uint64_t logical_block_bytes = 0;
  /// Path ORAM bucket size (Z).
  std::uint32_t bucket_size = 4;

  /// Scheduler stages; fractions refer to the period's load budget and
  /// should sum to 1 (the last stage absorbs any remainder).
  std::vector<scheduler_stage> stages = {{1, 0.20}, {3, 0.13}, {5, 0.67}};
  /// Prefetch window: the scheduler scans d = prefetch_factor * c
  /// requests ahead in the ROB table (§4.2 requires d > c).
  std::uint32_t prefetch_factor = 3;

  /// Physical partition capacity = partition_slack * (N / #partitions).
  /// 1.05 keeps the storage footprint near the paper's N blocks while
  /// making per-partition overflow negligible (excess is sheltered).
  double partition_slack = 1.05;
  /// Shuffle 1/shuffle_every_periods of the partitions per period
  /// (§5.3.1 partial shuffle; 1 = full shuffle every period).
  std::uint32_t shuffle_every_periods = 1;

  shuffle_policy shuffle = shuffle_policy::foreground;
  /// Device-time budget (ns) of one incremental shuffle slice, pumped
  /// between access rounds under shuffle_policy::incremental (other
  /// policies ignore it). 0 = unbounded: the whole job runs at the
  /// period boundary, reproducing the foreground machine bit for bit.
  /// Public information by design: the budget — and therefore every
  /// slice boundary — depends only on the configuration, never on the
  /// workload.
  sim::sim_time shuffle_slice_budget = 0;

  /// Number of independent controller shards the engine stripes the
  /// block space over (core/engine.h). 1 = a single controller with the
  /// exact historical behavior; > 1 routes requests by a keyed PRF over
  /// the block id and pads every per-shard round to shard_round_cap so
  /// the per-shard bus shape stays data-independent.
  std::uint32_t shard_count = 1;
  /// Request slots every shard executes per engine round when
  /// shard_count > 1 (real requests topped up with dummies). 0 derives
  /// the cap from the scheduler geometry. Public information by design:
  /// the cap may depend on the configuration, never on the workload.
  std::uint32_t shard_round_cap = 0;
  /// Seed of the keyed SipHash PRF that routes block ids to shards.
  std::uint64_t route_key_seed = 0x726f757465;  // "route"

  /// Round-scoped request coalescing (src/coalesce/): concurrent
  /// same-block requests merge into one physical access per round and
  /// the result fans back out to every waiting completion. Coalescing
  /// only changes how many *real* slots a round consumes — every shard
  /// still executes exactly shard_round_cap public slots per round
  /// (dummy-topped), including single-shard engines, so the bus shape
  /// stays data-independent whatever the duplicate rate. Off (default)
  /// is bit-for-bit the non-coalescing machine.
  bool coalescing = false;

  /// How the engine executes its shard lanes (runtime/runtime_policy.h):
  /// the single-threaded discrete-event machine, or one worker thread
  /// per shard. Traces, stats and completion times are identical either
  /// way for a fixed seed — the runtime only changes wall-clock time.
  runtime_policy runtime = runtime_policy::sim;
  /// Worker threads under runtime_policy::threaded. 0 = one per shard;
  /// values above shard_count are clamped (a shard is confined to one
  /// thread, so extra workers could never receive work). Ignored by
  /// runtime_policy::sim and by single-shard engines, which have no
  /// lanes to overlap.
  std::uint32_t worker_threads = 0;

  /// Ring ORAM backend (oram/ring/): real block slots per bucket (the
  /// Ring paper's Z). Ring buckets are wider and shallower than Path
  /// ORAM's, so the knob is separate from bucket_size; the default is
  /// the Ring ORAM paper's proven (Z, S, A) = (16, 25, 20) tuple.
  std::uint32_t ring_bucket_size = 16;
  /// Dummy (spare) slots per Ring ORAM bucket (S). Each online read
  /// consumes one unread slot per bucket; a bucket is reshuffled early
  /// once S slots have been consumed since its last rewrite, so S > A
  /// makes early reshuffles rare.
  std::uint32_t ring_spare_slots = 25;
  /// Ring ORAM eviction rate (A): one deterministic reverse-
  /// lexicographic path eviction every A online reads. Public
  /// information by design — the eviction schedule depends only on the
  /// access count, never on the workload.
  std::uint32_t ring_eviction_rate = 20;
  /// XOR-combined online reads: the storage side folds the one chosen
  /// slot per bucket into a single combined block, which the client
  /// unXORs using the deterministic dummy encodings — one device
  /// transfer per path read instead of one per level. Off falls back
  /// to per-slot reads (same trace shape, one op per chosen slot).
  bool ring_xor = true;

  /// Hierarchical backend (oram/hier/): geometric growth factor between
  /// consecutive levels (level i+1 holds hier_fanout times the real
  /// capacity of level i). Larger fan-outs mean fewer levels — fewer
  /// probes per access — at the price of bigger, rarer merges.
  std::uint32_t hier_fanout = 4;
  /// Dummy budget per level as a fraction of its real capacity: level i
  /// is refreshed (re-permuted in place) after ceil(rate * r_i) probes,
  /// so a fresh unprobed slot always exists. The schedule depends only
  /// on the access count — public by design.
  double hier_rebuild_rate = 1.0;
  /// Bits per entry of the trusted succinct index (level tag + slot).
  /// 0 derives the minimum from the geometry; larger values reserve
  /// headroom (the entry is rejected if it cannot hold the geometry).
  std::uint32_t hier_index_bits = 0;

  /// Places the recursive position map chain of the tree backends
  /// (path, ring) on the storage device instead of the memory device —
  /// the honest client/server wiring, where each map level is a
  /// dependent storage round trip. Off (default) keeps the historical
  /// map-on-memory machine bit for bit.
  bool map_on_storage = false;

  /// Recursive position map of the path backend: leaf labels packed
  /// into one map block (the compression factor per recursion level).
  std::uint64_t map_entries_per_block = 64;
  /// Stop recursing once a map level's entry count is at or below this;
  /// the residue is held as a plain trusted-memory vector. Small values
  /// force deep recursion (tests); large values approximate the paper's
  /// flat 8-bytes-per-block map.
  std::uint64_t map_direct_threshold = 1024;

  /// Device-side layout of the tree-resident storage lane
  /// (storage/page_layout.h). `flat` (default) is bit-for-bit the
  /// historical one-op-per-bucket machine; `page` packs page-sized
  /// subtree segments so a path costs one transfer per segment, with
  /// valid-bit skipping of never-written segments. The partitioned
  /// backend's storage lane is point-access by design, so the knob is
  /// neutral there.
  storage::storage_layout layout = storage::storage_layout::flat;
  /// Target device page size (bytes) for storage_layout::page; sets the
  /// subtree-segment height. Public information by design: the segment
  /// geometry depends only on the configuration, never on the workload.
  std::uint64_t page_bytes = 16384;

  /// Real sealing (tests) vs plaintext records with modelled crypto
  /// time (large benches).
  bool seal = true;
  std::uint64_t key_seed = 0x686f72616d;  // "horam"

  /// Derived: number of storage partitions (~sqrt(N)).
  [[nodiscard]] std::uint64_t partition_count() const {
    return util::isqrt_ceil(block_count);
  }
  /// Derived: storage loads per access period (n/2).
  [[nodiscard]] std::uint64_t period_loads() const {
    return memory_blocks / 2;
  }

  /// Validates the invariants the components rely on.
  void validate() const {
    expects(block_count > 0, "block_count must be positive");
    expects(payload_bytes > 0, "payload_bytes must be positive");
    expects(memory_blocks >= 2 * bucket_size,
            "memory must hold at least one tree bucket pair");
    expects(memory_blocks / 2 < block_count,
            "memory as large as the dataset needs no storage layer");
    expects(!stages.empty(), "at least one scheduler stage");
    for (const scheduler_stage& stage : stages) {
      expects(stage.c >= 1, "stage group size must be >= 1");
      expects(stage.fraction > 0.0, "stage fraction must be positive");
    }
    expects(prefetch_factor >= 1, "prefetch window must cover the group");
    expects(partition_slack >= 1.0, "partition slack below 1 cannot fit");
    expects(shuffle_every_periods >= 1, "shuffle cadence must be >= 1");
    expects(shuffle_slice_budget >= 0,
            "shuffle slice budget cannot be negative");
    expects(shard_count >= 1, "shard count must be >= 1");
    expects(shard_count <= block_count,
            "more shards than blocks leaves shards empty");
    expects(ring_bucket_size >= 1, "ring bucket size (Z) must be >= 1");
    expects(ring_spare_slots >= 1, "ring spare slots (S) must be >= 1");
    expects(ring_eviction_rate >= 1,
            "ring eviction rate (A) must be >= 1");
    expects(hier_fanout >= 2, "hier fan-out must be >= 2");
    expects(hier_rebuild_rate > 0.0,
            "hier rebuild rate must be positive");
    expects(hier_index_bits <= 64,
            "hier index entries are packed into 64-bit words");
    expects(map_entries_per_block >= 2,
            "map recursion needs at least two entries per block");
    expects(map_direct_threshold >= 1,
            "map direct threshold must be positive");
    expects(page_bytes > 0, "page_bytes must be positive");
  }
};

}  // namespace horam

#endif  // HORAM_CORE_CONFIG_H
