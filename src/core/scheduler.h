// Secure request scheduler (§4.2).
//
// Every cycle has a fixed observable shape: exactly one storage load
// plus c in-memory path accesses, where c is set by the active stage.
// The scheduler scans the first d = prefetch_factor * c ROB entries
// ("I/O pre-fetching") for the best real fill — one miss to load, up to
// c resident requests to service — and pads the remainder with dummies.
// The hit/miss status of individual requests is therefore hidden: the
// bus pattern is the same whatever the mix (§4.4.2).
#ifndef HORAM_CORE_SCHEDULER_H
#define HORAM_CORE_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/rob_table.h"
#include "oram/common/types.h"

namespace horam {

/// The scheduler's decision for one cycle.
struct cycle_plan {
  /// Stage group size this cycle.
  std::uint32_t c = 1;
  /// ROB position whose block should be loaded from storage.
  std::optional<std::size_t> miss_position;
  /// ROB positions to service with in-memory accesses (size <= c).
  std::vector<std::size_t> hit_positions;
  /// Dummy in-memory accesses needed to pad the group to c.
  std::uint32_t dummy_hits = 0;
  /// True when no miss was found in the window (dummy storage load).
  [[nodiscard]] bool dummy_miss() const noexcept {
    return !miss_position.has_value();
  }
};

/// Stage-driven group planner.
class scheduler {
 public:
  scheduler(std::vector<scheduler_stage> stages, std::uint64_t period_loads,
            std::uint32_t prefetch_factor);

  /// Group size for the stage active after `loads_done` period loads.
  [[nodiscard]] std::uint32_t group_size(std::uint64_t loads_done) const;

  /// Prefetch window d for the active stage (always > c).
  [[nodiscard]] std::uint64_t window(std::uint64_t loads_done) const;

  /// How many requests an incremental pump (tenant_scheduler /
  /// horam::service) should hand the controller per scheduling round:
  /// enough to keep the ROB ahead of the prefetch window (mirrors the
  /// controller's own refill target) while staying small enough that
  /// cross-tenant interleaving happens at request granularity.
  [[nodiscard]] std::uint64_t round_budget(std::uint64_t loads_done) const;

  /// Plans one cycle. `resident(id)` tells whether a block can be
  /// serviced from memory; non-resident blocks are miss candidates.
  [[nodiscard]] cycle_plan plan(
      const rob_table& rob, std::uint64_t loads_done,
      const std::function<oram::block_id(std::uint64_t)>& id_of_request,
      const std::function<bool(oram::block_id)>& resident) const;

 private:
  std::vector<scheduler_stage> stages_;
  /// Stage boundaries in period-load units (cumulative).
  std::vector<std::uint64_t> boundaries_;
  std::uint32_t prefetch_factor_;
};

}  // namespace horam

#endif  // HORAM_CORE_SCHEDULER_H
