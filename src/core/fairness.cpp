#include "core/fairness.h"

#include <limits>

#include "util/contracts.h"

namespace horam {

std::size_t round_robin_policy::pick(std::span<const tenant_lane> lanes) {
  expects(!lanes.empty(), "fairness policy offered no lanes");
  // Smallest tenant id strictly after the last served one; wrap to the
  // overall smallest when none remains in this rotation.
  std::size_t next = lanes.size();
  std::size_t smallest = 0;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i].tenant < lanes[smallest].tenant) {
      smallest = i;
    }
    if (last_.has_value() && lanes[i].tenant > *last_ &&
        (next == lanes.size() || lanes[i].tenant < lanes[next].tenant)) {
      next = i;
    }
  }
  const std::size_t choice = next == lanes.size() ? smallest : next;
  last_ = lanes[choice].tenant;
  return choice;
}

std::size_t weighted_share_policy::pick(
    std::span<const tenant_lane> lanes) {
  expects(!lanes.empty(), "fairness policy offered no lanes");
  std::size_t best = 0;
  double best_pass = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    expects(lanes[i].weight > 0.0, "tenant weight must be positive");
    const double pass =
        (static_cast<double>(lanes[i].serviced) + 1.0) / lanes[i].weight;
    // Tie-break on tenant id for determinism.
    if (pass < best_pass ||
        (pass == best_pass && lanes[i].tenant < lanes[best].tenant)) {
      best = i;
      best_pass = pass;
    }
  }
  return best;
}

std::string_view fairness_name(fairness_kind kind) {
  switch (kind) {
    case fairness_kind::round_robin: return "round-robin";
    case fairness_kind::weighted_share: return "weighted-share";
  }
  return "?";
}

fairness_kind fairness_by_name(std::string_view name) {
  if (name == "round-robin" || name == "rr") {
    return fairness_kind::round_robin;
  }
  if (name == "weighted-share" || name == "weighted") {
    return fairness_kind::weighted_share;
  }
  expects(false, "unknown fairness policy (round-robin | weighted-share)");
  return fairness_kind::round_robin;
}

std::unique_ptr<fairness_policy> make_fairness_policy(fairness_kind kind) {
  switch (kind) {
    case fairness_kind::round_robin:
      return std::make_unique<round_robin_policy>();
    case fairness_kind::weighted_share:
      return std::make_unique<weighted_share_policy>();
  }
  expects(false, "unknown fairness policy kind");
  return nullptr;
}

}  // namespace horam
