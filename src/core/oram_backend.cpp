#include "core/oram_backend.h"

#include <unordered_map>
#include <utility>

#include "util/contracts.h"

namespace horam {

namespace {

/// Default begin_shuffle() adapter: holds the evicted set staged until
/// the first step(), which runs the backend's monolithic
/// shuffle_period() whole (the budget cannot split work the scheme
/// exposes no slices of). Overflow blocks stay staged until finish()
/// so the controller can serve them throughout.
class monolithic_shuffle_job final : public shuffle_job {
 public:
  monolithic_shuffle_job(oram_backend& owner,
                         std::vector<oram::evicted_block> evicted,
                         std::uint64_t period_index)
      : owner_(owner), evicted_(std::move(evicted)), period_(period_index) {
    for (std::size_t i = 0; i < evicted_.size(); ++i) {
      staged_.emplace(evicted_[i].id, i);
    }
  }

  shuffle_cost step(sim::sim_time /*device_budget*/) override {
    expects(!ran_, "shuffle_job::step() after done()");
    staged_.clear();
    const shuffle_cost cost =
        owner_.shuffle_period(std::move(evicted_), period_, overflow_);
    evicted_.clear();
    for (std::size_t i = 0; i < overflow_.size(); ++i) {
      staged_.emplace(overflow_[i].id, i);
    }
    ran_ = true;
    return cost;
  }

  [[nodiscard]] bool done() const noexcept override { return ran_; }

  [[nodiscard]] bool holds(oram::block_id id) const override {
    return staged_.contains(id);
  }

  [[nodiscard]] std::vector<std::uint8_t>* staged(
      oram::block_id id) override {
    const auto it = staged_.find(id);
    if (it == staged_.end()) {
      return nullptr;
    }
    return ran_ ? &overflow_[it->second].payload
                : &evicted_[it->second].payload;
  }

  void finish(std::vector<oram::evicted_block>& overflow_out) override {
    expects(ran_, "shuffle_job::finish() before done()");
    expects(!finished_, "shuffle_job::finish() called twice");
    for (oram::evicted_block& block : overflow_) {
      overflow_out.push_back(std::move(block));
    }
    overflow_.clear();
    staged_.clear();
    finished_ = true;
  }

 private:
  oram_backend& owner_;
  std::vector<oram::evicted_block> evicted_;
  std::uint64_t period_;
  std::vector<oram::evicted_block> overflow_;
  /// id -> index into evicted_ (before the run) / overflow_ (after).
  std::unordered_map<oram::block_id, std::size_t> staged_;
  bool ran_ = false;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<shuffle_job> oram_backend::begin_shuffle(
    std::vector<oram::evicted_block> evicted, std::uint64_t period_index) {
  return std::make_unique<monolithic_shuffle_job>(*this, std::move(evicted),
                                                  period_index);
}

}  // namespace horam
