// H-ORAM controller: the trusted orchestrator tying together the
// in-memory Path ORAM cache, a pluggable oram_backend (the partitioned
// storage layer by default), the ROB table and the secure scheduler
// (Figure 4-1).
//
// Operation (§4.1): during an access period each cycle issues exactly
// one storage load (real miss, or a dummy that may prefetch) in
// parallel with c in-memory path accesses; the cycle lasts
// max(io lane, memory lane) of virtual time. After n/2 loads the
// controller runs the shuffle period: oblivious tree evict, group-and-
// partition shuffle, tree re-initialisation. The shuffle's device time
// is charged according to the configured shuffle_policy (foreground /
// page-cache-style async write-back / fully offloaded — Figure 5-2 —
// or deamortized: shuffle_policy::incremental turns the period into a
// backend shuffle_job whose budget-bounded slices run between access
// rounds, so the stop-the-world latency cliff disappears from the
// request tail).
#ifndef HORAM_CORE_CONTROLLER_H
#define HORAM_CORE_CONTROLLER_H

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/oram_backend.h"
#include "core/rob_table.h"
#include "core/scheduler.h"
#include "core/storage_layer.h"
#include "oram/common/access_trace.h"
#include "oram/common/types.h"
#include "oram/path/path_oram.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "util/rng.h"

namespace horam {

/// One application request.
struct request {
  oram::op_kind op = oram::op_kind::read;
  oram::block_id id = 0;
  /// Submitting user (multi-user front end; 0 for single user).
  std::uint32_t user = 0;
  /// Payload for writes (empty for reads).
  std::vector<std::uint8_t> write_data;
  /// Read-modify-write: a write that also returns the block's pre-write
  /// payload in request_result::read_data. One physical access either
  /// way — ORAM rewrites the block on every access — so the bus shape
  /// is unchanged. The coalescer uses this to serve readers that were
  /// merged ahead of a write in the same round.
  bool fetch_before_write = false;
};

/// Per-request outcome (optional output of run()).
struct request_result {
  sim::sim_time completion_time = 0;
  /// Control-layer knowledge: was the block memory-resident when first
  /// scheduled? (Never observable on the bus.)
  bool hit = false;
  std::vector<std::uint8_t> read_data;
};

/// Aggregate counters of a controller run.
struct controller_stats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t cycles = 0;  // == storage loads issued (paper: "I/O accesses")
  std::uint64_t real_loads = 0;
  std::uint64_t dummy_loads = 0;
  std::uint64_t dummy_path_accesses = 0;
  std::uint64_t periods = 0;  // completed shuffle periods
  /// Incremental shuffle slices pumped between access rounds
  /// (shuffle_policy::incremental with a bounded slice budget).
  std::uint64_t shuffle_slices = 0;

  sim::sim_time access_time = 0;   // wall time of access periods
  sim::sim_time shuffle_time = 0;  // device time of shuffle periods
  sim::sim_time total_time = 0;    // wall time incl. charged shuffles
  sim::sim_time io_busy = 0;       // storage-device busy time
  sim::sim_time memory_busy = 0;   // memory-device busy time
  sim::sim_time cpu_busy = 0;      // control-layer busy time
  sim::sim_time io_load_time = 0;  // storage time of loads only
  /// Time spent finishing an in-flight incremental job foreground
  /// because the next period boundary arrived first (the cliff the
  /// slice budget should be sized to avoid).
  sim::sim_time shuffle_stall_time = 0;

  /// Storage-device traffic attributable to shuffle periods and
  /// incremental shuffle slices, measured by snapshotting the device's
  /// io_stats around the shuffle execution points (zero until
  /// attach_device_stats wires a device; the engine does). Subtracting
  /// these from the device totals isolates the *online* traffic of the
  /// access rounds — the split the ring backend's one-slot reads and
  /// XOR fetches improve while its evictions batch into sweeps.
  std::uint64_t shuffle_device_read_ops = 0;
  std::uint64_t shuffle_device_write_ops = 0;
  std::uint64_t shuffle_device_read_bytes = 0;
  std::uint64_t shuffle_device_write_bytes = 0;
  /// Round trips (sim::io_stats::round_trips) the shuffle machinery
  /// consumed; device total minus this is the online round-trip count —
  /// the dependent-exchange metric the hier backend's batched probes
  /// collapse to ≈1 per request.
  std::uint64_t shuffle_device_round_trips = 0;

  /// Streaming per-request service-latency histogram (ROB entry to
  /// retirement, shuffle charges included), the controller-level half
  /// of the tail-latency accounting. Resource-level: under the sharded
  /// engine it includes the router's padding requests — the tenant
  /// layer's histograms are the application-level view.
  sim::latency_histogram request_latency;

  /// Average storage-load service time (the paper's "I/O Latency").
  [[nodiscard]] double average_io_latency_us() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(io_load_time) / 1e3 /
                             static_cast<double>(cycles);
  }
  /// Realised average group size (the paper's ĉ, Eq 5-1).
  [[nodiscard]] double average_c() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(requests) /
                             static_cast<double>(cycles);
  }

  /// Element-wise accumulation, for multi-instance runs (the sharded
  /// engine, multi-machine benches). Every field sums — including the
  /// wall-clock fields, which therefore read as *lane* time; a caller
  /// aggregating parallel lanes overrides total_time with the wall
  /// window it measured (core/engine.cpp does).
  controller_stats& operator+=(const controller_stats& other) noexcept {
    requests += other.requests;
    hits += other.hits;
    misses += other.misses;
    cycles += other.cycles;
    real_loads += other.real_loads;
    dummy_loads += other.dummy_loads;
    dummy_path_accesses += other.dummy_path_accesses;
    periods += other.periods;
    shuffle_slices += other.shuffle_slices;
    access_time += other.access_time;
    shuffle_time += other.shuffle_time;
    total_time += other.total_time;
    io_busy += other.io_busy;
    memory_busy += other.memory_busy;
    cpu_busy += other.cpu_busy;
    io_load_time += other.io_load_time;
    shuffle_stall_time += other.shuffle_stall_time;
    shuffle_device_read_ops += other.shuffle_device_read_ops;
    shuffle_device_write_ops += other.shuffle_device_write_ops;
    shuffle_device_read_bytes += other.shuffle_device_read_bytes;
    shuffle_device_write_bytes += other.shuffle_device_write_bytes;
    shuffle_device_round_trips += other.shuffle_device_round_trips;
    request_latency += other.request_latency;
    return *this;
  }
};

/// Sums a set of per-instance counters (see operator+= for the
/// wall-clock caveat on parallel lanes).
[[nodiscard]] inline controller_stats aggregate(
    std::span<const controller_stats> parts) noexcept {
  controller_stats total;
  for (const controller_stats& part : parts) {
    total += part;
  }
  return total;
}

class controller {
 public:
  /// Primary constructor: the caller chooses the oblivious store. The
  /// backend must protect `config.block_count` blocks of
  /// `config.payload_bytes` payload; `memory_device` backs the in-memory
  /// cache tree.
  controller(const horam_config& config,
             std::unique_ptr<oram_backend> backend,
             sim::block_device& memory_device, const sim::cpu_model& cpu,
             util::random_source& rng, oram::access_trace* trace = nullptr);

  /// Convenience constructor: fronts the default partitioned
  /// storage_layer on `storage_device`. Pass a filler to give blocks
  /// initial contents (null = zero-filled).
  controller(const horam_config& config, sim::block_device& storage_device,
             sim::block_device& memory_device, const sim::cpu_model& cpu,
             util::random_source& rng, oram::access_trace* trace = nullptr,
             const std::function<void(oram::block_id,
                                      std::span<std::uint8_t>)>* filler =
                 nullptr);

  /// Processes a batch of requests to completion. Results (per-request
  /// completion time, read payloads) are captured when `results` is
  /// non-null. May be called repeatedly; virtual time accumulates.
  void run(std::span<const request> requests,
           std::vector<request_result>* results = nullptr);

  // --- Incremental session API: stream requests in, drain when ready. ---

  /// Enqueues one request (validated immediately) without running it.
  void submit(request req);
  /// Enqueues a batch without running it.
  void submit(std::span<const request> requests);
  /// Requests submitted but not yet drained.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }
  /// Services every pending request to completion; per-request results
  /// (in submission order) are captured when `results` is non-null.
  void drain(std::vector<request_result>* results = nullptr);

  /// Convenience single-request API (examples / interactive use); pads
  /// the group with dummies like any other cycle.
  std::vector<std::uint8_t> read(oram::block_id id);
  void write(oram::block_id id, std::span<const std::uint8_t> data);

  [[nodiscard]] const controller_stats& stats() const noexcept {
    return stats_;
  }
  /// Zeroes the counters and restarts the total_time epoch at the
  /// current virtual time, so benches can exclude warm-up traffic.
  void reset_stats() noexcept;
  /// Wires the storage device's counters so shuffle-period device
  /// traffic can be told apart from online access traffic (the
  /// shuffle_device_* stats). `stats` must outlive the controller;
  /// null (the default) leaves those counters at zero. The convenience
  /// ctor and the engine attach automatically.
  void attach_device_stats(const sim::io_stats* stats) noexcept {
    device_stats_ = stats;
  }
  /// Requests an incremental pump should submit per scheduling round
  /// (see scheduler::round_budget).
  [[nodiscard]] std::uint64_t round_budget() const noexcept;
  /// True while an incremental shuffle job is riding between rounds
  /// (shuffle_policy::incremental with a bounded slice budget).
  [[nodiscard]] bool shuffle_in_flight() const noexcept {
    return shuffle_job_ != nullptr;
  }
  [[nodiscard]] sim::sim_time now() const noexcept { return clock_.now(); }
  [[nodiscard]] const horam_config& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const oram::path_oram& memory_tree() const noexcept {
    return *tree_;
  }
  /// The oblivious store behind the cache layer.
  [[nodiscard]] const oram_backend& backend() const noexcept {
    return *storage_;
  }
  /// Typed view of the default partitioned backend; only valid when the
  /// controller fronts a storage_layer (geometry-aware tests, audits).
  [[nodiscard]] const storage_layer& storage() const;
  /// Trusted-memory bytes the control layer occupies (reporting).
  [[nodiscard]] std::uint64_t control_memory_bytes() const;

 private:
  [[nodiscard]] bool resident(oram::block_id id) const;
  /// Executes one scheduler cycle against `requests`; returns the
  /// number of requests serviced.
  std::uint64_t run_cycle(std::span<const request> requests,
                          std::vector<request_result>* results);
  void run_shuffle_period();
  /// Runs one slice of the in-flight incremental shuffle job (no-op
  /// without one); charges the slice's device time and, when the job
  /// completes, shelters its overflow.
  void pump_shuffle_slice();
  /// Accumulates the storage-device op/byte growth since `before` into
  /// the shuffle_device_* counters (no-op without an attached device).
  void charge_shuffle_device_delta(const sim::io_stats& before) noexcept;
  /// Services one hit request via the memory lane; returns its cost.
  oram::cost_split service_hit(const request& req, request_result* result);

  horam_config config_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  oram::access_trace* trace_;

  sim::sim_clock clock_;
  std::unique_ptr<oram::path_oram> tree_;
  std::unique_ptr<oram_backend> storage_;
  scheduler scheduler_;
  rob_table rob_;

  /// Requests submitted but not yet drained (session API).
  std::vector<request> pending_;

  /// Control-layer shelter for shuffle-overflow blocks; resident from
  /// the scheduler's point of view (served with dummy path accesses).
  std::unordered_map<oram::block_id, std::vector<std::uint8_t>> shelter_;

  /// In-flight incremental shuffle job (shuffle_policy::incremental
  /// with a bounded budget); its staged blocks are resident from the
  /// scheduler's point of view, like the shelter.
  std::unique_ptr<shuffle_job> shuffle_job_;

  /// Storage-device counters for the shuffle/online traffic split
  /// (attach_device_stats); null = split not measured.
  const sim::io_stats* device_stats_ = nullptr;

  std::uint64_t loads_this_period_ = 0;
  std::uint64_t period_index_ = 0;
  /// Outstanding async write-back debt (shuffle_policy::async_writeback).
  sim::sim_time flush_debt_ = 0;
  /// Virtual-time origin of the current stats window (reset_stats).
  sim::sim_time stats_epoch_ = 0;

  controller_stats stats_;
};

}  // namespace horam

#endif  // HORAM_CORE_CONTROLLER_H
