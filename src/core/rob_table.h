// ROB (re-order buffer) table: the control-layer queue the scheduler
// scans (Figure 4-1 item "ROB Table", §4.2). Requests enter in program
// order; the scheduler may service them out of order (hits overtake
// misses), which is exactly what a re-order buffer permits.
#ifndef HORAM_CORE_ROB_TABLE_H
#define HORAM_CORE_ROB_TABLE_H

#include <cstdint>
#include <deque>

#include "util/contracts.h"

namespace horam {

/// FIFO of outstanding request indices with per-entry scheduling state.
class rob_table {
 public:
  struct entry {
    std::uint64_t request_index = 0;
    /// The entry's block is being fetched by the current cycle's I/O
    /// load; it becomes serviceable next cycle.
    bool loading = false;
  };

  void push(std::uint64_t request_index) {
    entries_.push_back(entry{request_index, false});
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// position 0 = oldest outstanding request.
  [[nodiscard]] const entry& at(std::size_t position) const {
    expects(position < entries_.size(), "ROB position out of range");
    return entries_[position];
  }
  [[nodiscard]] entry& at(std::size_t position) {
    expects(position < entries_.size(), "ROB position out of range");
    return entries_[position];
  }

  /// Removes the entry at `position` (after servicing).
  void remove(std::size_t position) {
    expects(position < entries_.size(), "ROB position out of range");
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(position));
  }

  void clear_loading_flags() {
    for (entry& e : entries_) {
      e.loading = false;
    }
  }

 private:
  std::deque<entry> entries_;
};

}  // namespace horam

#endif  // HORAM_CORE_ROB_TABLE_H
