// Cross-tenant fairness policies (§5.3.2).
//
// The multi-tenant layers (core tenant_scheduler, facade horam::service)
// interleave per-tenant admission queues into the controller's request
// stream. Which queue is served next is a policy decision, pluggable so
// deployments can trade strict rotation for proportional shares without
// touching the scheduler: the policy only ever sees queue depths and
// service counts, never block ids, so it cannot leak the access pattern.
#ifndef HORAM_CORE_FAIRNESS_H
#define HORAM_CORE_FAIRNESS_H

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

namespace horam {

/// What a fairness policy may observe about one tenant with pending
/// work. Only tenants with `queued > 0` are offered to the policy.
struct tenant_lane {
  std::uint32_t tenant = 0;
  /// Relative share weight (> 0); 1.0 unless the tenant set one.
  double weight = 1.0;
  /// Requests admitted but not yet handed to the controller.
  std::size_t queued = 0;
  /// Requests this tenant has had scheduled so far.
  std::uint64_t serviced = 0;
};

/// Chooses which tenant's queue the scheduler pops next. Policies are
/// stateful (rotation cursors, virtual-time counters) and must pick
/// every offered lane eventually — starvation-freedom is part of the
/// contract, and tests enforce it.
class fairness_policy {
 public:
  virtual ~fairness_policy() = default;

  /// Human-readable policy name ("round-robin", "weighted-share").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Returns the index into `lanes` (never empty) to serve next.
  [[nodiscard]] virtual std::size_t pick(
      std::span<const tenant_lane> lanes) = 0;
};

/// Strict rotation over tenants with pending work: each pick serves the
/// smallest tenant id after the previously served one, wrapping around.
/// Ignores weights.
class round_robin_policy final : public fairness_policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "round-robin";
  }
  [[nodiscard]] std::size_t pick(
      std::span<const tenant_lane> lanes) override;

 private:
  std::optional<std::uint32_t> last_;
};

/// Deficit-style proportional shares: serves the lane with the smallest
/// (serviced + 1) / weight, so long-run service counts converge to the
/// weight ratios while every backlogged lane still progresses (its
/// virtual time grows slowest while it is behind).
class weighted_share_policy final : public fairness_policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "weighted-share";
  }
  [[nodiscard]] std::size_t pick(
      std::span<const tenant_lane> lanes) override;
};

/// The policies the facade can name.
enum class fairness_kind : std::uint8_t {
  round_robin,
  weighted_share,
};

/// Human-readable kind name ("round-robin" / "weighted-share").
[[nodiscard]] std::string_view fairness_name(fairness_kind kind);

/// Parses a policy name; throws contract_error on unknown names.
[[nodiscard]] fairness_kind fairness_by_name(std::string_view name);

/// Constructs a fresh policy of the named kind.
[[nodiscard]] std::unique_ptr<fairness_policy> make_fairness_policy(
    fairness_kind kind);

}  // namespace horam

#endif  // HORAM_CORE_FAIRNESS_H
