#include "core/multi_user.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/contracts.h"

namespace horam {

// --------------------------------------------------- tenant_scheduler

tenant_scheduler::tenant_scheduler(engine& eng,
                                   std::unique_ptr<fairness_policy> policy,
                                   std::size_t max_queue_depth)
    : engine_(eng),
      policy_(std::move(policy)),
      max_queue_depth_(max_queue_depth),
      stats_epoch_(eng.now()) {
  expects(policy_ != nullptr, "tenant_scheduler needs a fairness policy");
}

std::uint32_t tenant_scheduler::add_tenant(double weight) {
  expects(weight > 0.0, "tenant weight must be positive");
  const auto tenant = static_cast<std::uint32_t>(lanes_.size());
  lane fresh;
  fresh.weight = weight;
  fresh.stats.tenant = tenant;
  fresh.stats.weight = weight;
  lanes_.push_back(std::move(fresh));
  return tenant;
}

void tenant_scheduler::grant(std::uint32_t tenant, user_grant grant) {
  expects(tenant < lanes_.size(), "grant for unknown tenant");
  expects(grant.first <= grant.last, "grant range must be ordered");
  grants_[tenant] = grant;
}

std::uint64_t tenant_scheduler::enqueue(std::uint32_t tenant, request req) {
  expects(tenant < lanes_.size(), "enqueue for unknown tenant");
  expects(req.id < engine_.config().block_count,
          "request id out of range");
  // Access control before anything is queued: a rejected request leaves
  // no observable trace.
  const auto it = grants_.find(tenant);
  if (it != grants_.end() && !it->second.allows(req.id)) {
    throw access_denied(tenant, req.id);
  }
  lane& target = lanes_[tenant];
  if (max_queue_depth_ > 0 && target.queue.size() >= max_queue_depth_) {
    throw queue_overflow(tenant, target.queue.size());
  }
  if (target.queue.empty()) {
    // WFQ start-tag rule: a lane that goes backlogged resumes at the
    // scheduler's virtual clock (the highest pass ever dispatched, so
    // it persists across idle periods), not at its own lifetime count.
    // Idle time — or joining late — therefore cannot bank a monopoly in
    // either direction: veterans are not starved by fresh lanes, and
    // fresh lanes are not starved by veterans.
    const auto floor_serviced = static_cast<std::uint64_t>(std::max(
        0.0, std::ceil(virtual_pass_ * target.weight - 1.0)));
    target.serviced = std::max(target.serviced, floor_serviced);
  }
  req.user = tenant;
  queued_request entry;
  entry.seq = next_seq_++;
  entry.submitted = engine_.now();
  entry.req = std::move(req);
  target.queue.push_back(std::move(entry));
  ++target.stats.submitted;
  ++queued_total_;
  return target.queue.back().seq;
}

bool tenant_scheduler::step(const completion& on_complete) {
  if (queued_total_ == 0 && inflight_.empty()) {
    return false;
  }

  // One scheduling round: pop up to round_budget() requests, one policy
  // pick at a time, so the engine's shard rounds stay full while
  // tenants interleave at request granularity. The engine's own backlog
  // counts against the budget: with skewed routing a hot shard drains
  // slower than the pops arrive, and without this cap the in-engine
  // queue would grow without bound while the per-tenant admission
  // limits (which guard the *admission* queues) never fire.
  // The backlog is measured in round *slots* (distinct queued blocks
  // under coalescing, queued requests otherwise) and re-read per pick:
  // merged requests consume no new slot, so a hot-block burst keeps
  // admitting until the round's physical capacity is genuinely spoken
  // for. With coalescing off pending_slots() == pending() and the loop
  // is exactly the historical available = budget - backlog pop count.
  const std::uint64_t budget = engine_.round_budget();

  // Build the policy's view once per round and maintain it in place:
  // only the picked lane's fields change between picks, so a round is
  // O(budget) policy work instead of O(budget * tenants) rebuilds.
  std::vector<tenant_lane> views;
  views.reserve(lanes_.size());
  for (std::uint32_t tenant = 0; tenant < lanes_.size(); ++tenant) {
    if (!lanes_[tenant].queue.empty()) {
      views.push_back(tenant_lane{tenant, lanes_[tenant].weight,
                                  lanes_[tenant].queue.size(),
                                  lanes_[tenant].serviced});
    }
  }
  while (engine_.pending_slots() < budget && !views.empty()) {
    const std::size_t choice = policy_->pick(views);
    invariant(choice < views.size(), "fairness policy picked no lane");
    lane& source = lanes_[views[choice].tenant];
    queued_request entry = std::move(source.queue.front());
    source.queue.pop_front();
    virtual_pass_ = std::max(
        virtual_pass_,
        (static_cast<double>(source.serviced) + 1.0) / source.weight);
    ++source.serviced;
    --queued_total_;
    ++source.inflight;
    const std::uint64_t token = engine_.submit(std::move(entry.req));
    inflight_.emplace(token, inflight_meta{views[choice].tenant,
                                           entry.seq, entry.submitted});
    if (--views[choice].queued == 0) {
      views.erase(views.begin() + static_cast<std::ptrdiff_t>(choice));
    } else {
      ++views[choice].serviced;
    }
  }

  // One engine round; the completion-ordering layer delivers finished
  // requests with completion_time already on the global clock.
  engine_.step_round([&](std::uint64_t token, request_result&& result) {
    const auto it = inflight_.find(token);
    invariant(it != inflight_.end(),
              "engine completed an unknown request token");
    const inflight_meta meta = it->second;
    inflight_.erase(it);
    lane& owner = lanes_[meta.tenant];
    invariant(owner.inflight > 0, "inflight underflow");
    --owner.inflight;
    const sim::sim_time latency =
        result.completion_time - meta.submitted;
    tenant_stats& ts = owner.stats;
    ++ts.completed;
    ts.total_latency += latency;
    ts.max_latency = std::max(ts.max_latency, latency);
    ts.latency.record(latency);
    if (on_complete) {
      on_complete(meta.tenant, meta.seq, std::move(result), latency);
    }
  });
  return true;
}

void tenant_scheduler::run_until_idle(const completion& on_complete) {
  while (step(on_complete)) {
  }
}

std::size_t tenant_scheduler::queued(std::uint32_t tenant) const {
  expects(tenant < lanes_.size(), "queued() for unknown tenant");
  return lanes_[tenant].queue.size() + lanes_[tenant].inflight;
}

tenant_stats tenant_scheduler::stats(std::uint32_t tenant) const {
  expects(tenant < lanes_.size(), "stats() for unknown tenant");
  tenant_stats snapshot = lanes_[tenant].stats;
  snapshot.queued = lanes_[tenant].queue.size() + lanes_[tenant].inflight;
  const sim::sim_time elapsed = engine_.now() - stats_epoch_;
  snapshot.throughput =
      elapsed > 0 ? static_cast<double>(snapshot.completed) * 1e9 /
                        static_cast<double>(elapsed)
                  : 0.0;
  return snapshot;
}

void tenant_scheduler::reset_stats() {
  for (std::uint32_t tenant = 0; tenant < lanes_.size(); ++tenant) {
    lane& l = lanes_[tenant];
    l.stats = tenant_stats{};
    l.stats.tenant = tenant;
    l.stats.weight = l.weight;
    // Requests still queued or riding in the engine stay admitted and
    // will complete after the reset; count them as submitted in the new
    // epoch.
    l.stats.submitted = l.queue.size() + l.inflight;
  }
  stats_epoch_ = engine_.now();
}

// ------------------------------------------------ multi_user_frontend

void multi_user_frontend::grant(std::uint32_t user, user_grant grant) {
  expects(grant.first <= grant.last, "grant range must be ordered");
  grants_[user] = grant;
}

multi_user_summary multi_user_frontend::run(
    std::vector<std::vector<request>> per_user) {
  tenant_scheduler sched(shim_,
                         make_fairness_policy(fairness_kind::round_robin));
  for (std::uint32_t user = 0; user < per_user.size(); ++user) {
    sched.add_tenant();
    const auto it = grants_.find(user);
    if (it != grants_.end()) {
      sched.grant(user, it->second);
    }
  }

  // Admission happens before any scheduling round runs, so a grant
  // violation is thrown before anything reaches the ORAM (no trace) and
  // every request's latency is measured from the common batch start.
  const sim::sim_time start = controller_.now();
  for (std::uint32_t user = 0; user < per_user.size(); ++user) {
    for (request& req : per_user[user]) {
      sched.enqueue(user, std::move(req));
    }
  }
  sched.run_until_idle();

  multi_user_summary summary;
  summary.users.resize(per_user.size());
  std::uint64_t total = 0;
  for (std::uint32_t user = 0; user < per_user.size(); ++user) {
    const tenant_stats ts = sched.stats(user);
    summary.users[user].user = user;
    summary.users[user].requests = ts.completed;
    summary.users[user].mean_latency = ts.mean_latency();
    summary.users[user].max_latency = ts.max_latency;
    total += ts.completed;
  }
  summary.makespan = controller_.now() - start;
  summary.throughput =
      summary.makespan > 0
          ? static_cast<double>(total) * 1e9 /
                static_cast<double>(summary.makespan)
          : 0.0;
  return summary;
}

}  // namespace horam
