#include "core/multi_user.h"

#include <algorithm>

#include "util/contracts.h"

namespace horam {

void multi_user_frontend::grant(std::uint32_t user, user_grant grant) {
  expects(grant.first <= grant.last, "grant range must be ordered");
  grants_[user] = grant;
}

multi_user_summary multi_user_frontend::run(
    std::vector<std::vector<request>> per_user) {
  multi_user_summary summary;
  summary.users.resize(per_user.size());

  // Access control happens before scheduling: a denied request leaves
  // no observable trace.
  for (std::uint32_t user = 0; user < per_user.size(); ++user) {
    const auto it = grants_.find(user);
    if (it == grants_.end()) {
      continue;
    }
    for (const request& req : per_user[user]) {
      if (!it->second.allows(req.id)) {
        throw access_denied(user, req.id);
      }
    }
  }

  // Round-robin interleave: one request per user per round, skipping
  // exhausted queues (fair service order; §5.3.2's access control hook).
  std::vector<request> merged;
  std::vector<std::size_t> cursors(per_user.size(), 0);
  std::size_t remaining = 0;
  for (const auto& queue : per_user) {
    remaining += queue.size();
  }
  merged.reserve(remaining);
  while (remaining > 0) {
    for (std::uint32_t user = 0; user < per_user.size(); ++user) {
      if (cursors[user] < per_user[user].size()) {
        request req = per_user[user][cursors[user]++];
        req.user = user;
        merged.push_back(std::move(req));
        --remaining;
      }
    }
  }

  const sim::sim_time start = controller_.now();
  std::vector<request_result> results;
  controller_.run(merged, &results);
  summary.makespan = controller_.now() - start;

  // Latency = completion - batch start (all requests are queued
  // up-front; an arrival-time model would subtract arrivals instead).
  std::vector<sim::sim_time> total_latency(per_user.size(), 0);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const std::uint32_t user = merged[i].user;
    const sim::sim_time latency = results[i].completion_time - start;
    total_latency[user] += latency;
    summary.users[user].max_latency =
        std::max(summary.users[user].max_latency, latency);
    ++summary.users[user].requests;
  }
  for (std::uint32_t user = 0; user < per_user.size(); ++user) {
    summary.users[user].user = user;
    if (summary.users[user].requests > 0) {
      summary.users[user].mean_latency =
          total_latency[user] /
          static_cast<sim::sim_time>(summary.users[user].requests);
    }
  }
  summary.throughput =
      summary.makespan > 0
          ? static_cast<double>(merged.size()) * 1e9 /
                static_cast<double>(summary.makespan)
          : 0.0;
  return summary;
}

}  // namespace horam
