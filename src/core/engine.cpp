#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"

namespace horam {

namespace {

crypto::siphash_key make_route_key(std::uint64_t seed) {
  crypto::siphash_key key{};
  const std::uint64_t lo = seed;
  const std::uint64_t hi = seed ^ 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 8; ++i) {
    key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(lo >> (8 * i));
    key[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(hi >> (8 * i));
  }
  return key;
}

}  // namespace

std::uint64_t engine::derive_shard_seed(std::uint64_t route_key_seed,
                                        std::uint64_t seed,
                                        std::uint32_t shard,
                                        std::uint32_t domain) {
  // PRF the (domain, shard) pair under the routing key and fold it into
  // the machine seed: streams stay independent even for adjacent base
  // seeds, where the old sequential scheme (seed + c * shard) made
  // shard s under seed k identical to shard s-1 under seed k + c.
  const crypto::siphash_key key = make_route_key(route_key_seed);
  const std::uint64_t label =
      (static_cast<std::uint64_t>(domain) << 32) | shard;
  return seed ^ crypto::siphash24_u64(key, label);
}

/// One controller shard with its own device lane.
struct engine::shard_state {
  horam_config config;

  /// Owned machine lane (null when wrapping an external controller).
  struct lane_state {
    sim::block_device storage;
    sim::block_device memory;
    util::pcg64 rng;
    /// Separate stream for padding ids, so routing dummies never
    /// perturbs the shard's ORAM randomness.
    util::pcg64 pad_rng;
    std::optional<oram::access_trace> trace;

    lane_state(const sim::device_profile& storage_profile,
               const sim::device_profile& memory_profile,
               std::uint64_t seed, std::uint64_t pad_seed, bool with_trace)
        : storage(storage_profile),
          memory(memory_profile),
          rng(seed),
          pad_rng(pad_seed) {
      if (with_trace) {
        trace.emplace();
      }
    }
  };

  std::unique_ptr<lane_state> lane;
  std::unique_ptr<controller> owned;
  controller* ctrl = nullptr;
  /// Local id -> global id (empty = identity, the single-shard case).
  std::vector<oram::block_id> blocks;
};

engine::engine(const horam_config& config, const sim::cpu_model& cpu,
               const shard_factory& factory, const options& opts)
    : config_(config), route_key_(make_route_key(config.route_key_seed)) {
  expects(factory != nullptr, "engine needs a shard factory");
  config_.validate();
  const std::uint32_t count = config_.shard_count;

  std::vector<std::vector<oram::block_id>> members(count);
  if (count > 1) {
    shard_index_of_.resize(config_.block_count);
    local_id_of_.resize(config_.block_count);
    for (oram::block_id id = 0; id < config_.block_count; ++id) {
      const auto s = static_cast<std::uint32_t>(
          crypto::siphash24_u64(route_key_, id) % count);
      shard_index_of_[id] = s;
      local_id_of_[id] = members[s].size();
      members[s].push_back(id);
    }
  }
  round_cap_ = derive_round_cap();

  shards_.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    horam_config shard_config = config_;
    shard_config.shard_count = 1;  // a shard's own view is unsharded
    if (count > 1) {
      shard_config.block_count = members[s].size();
      // The memory budget splits evenly (remainder dropped); refusing
      // undersized splits here keeps direct engine construction honest
      // too — silently inflating per-shard caches would overrun the
      // configured trusted-memory budget.
      expects(config_.memory_blocks / count >=
                  2ULL * config_.bucket_size,
              "shards(): splitting memory_blocks() this many ways leaves "
              "less than one bucket pair per shard — lower shards() or "
              "raise memory_blocks()");
      shard_config.memory_blocks = config_.memory_blocks / count;
      expects(shard_config.block_count > 0,
              "shards(): the routing PRF left a shard without blocks — "
              "lower shards()");
      expects(shard_config.memory_blocks / 2 < shard_config.block_count,
              "shards(): splitting memory_blocks() this many ways leaves "
              "a shard with more cache than data — lower shards() or "
              "raise blocks()");
    }
    shard_config.validate();

    auto state = std::make_unique<shard_state>();
    state->config = shard_config;
    // A single-shard engine keeps the caller's seed verbatim — it must
    // stay bit-for-bit the historical single-controller machine (its
    // pad stream is never drawn: slots always equal reals). Real shards
    // get PRF-derived per-shard streams, domain 0 for the ORAM RNG and
    // domain 1 for the pad-id stream.
    const std::uint64_t rng_seed =
        count == 1
            ? opts.seed
            : derive_shard_seed(config_.route_key_seed, opts.seed, s, 0);
    const std::uint64_t pad_seed =
        derive_shard_seed(config_.route_key_seed, opts.seed, s, 1);
    state->lane = std::make_unique<shard_state::lane_state>(
        opts.storage_profile, opts.memory_profile, rng_seed, pad_seed,
        opts.trace);
    oram::access_trace* trace =
        state->lane->trace.has_value() ? &*state->lane->trace : nullptr;
    std::unique_ptr<oram_backend> backend =
        factory(s, shard_config, state->lane->storage, state->lane->memory,
                cpu, state->lane->rng, trace,
                std::span<const oram::block_id>(members[s]));
    expects(backend != nullptr, "shard factory returned no backend");
    state->owned = std::make_unique<controller>(
        shard_config, std::move(backend), state->lane->memory, cpu,
        state->lane->rng, trace);
    // Wire the lane's device counters so each shard controller can
    // split its device traffic into shuffle vs online access rounds.
    state->owned->attach_device_stats(&state->lane->storage.stats());
    state->ctrl = state->owned.get();
    state->blocks = std::move(members[s]);
    shards_.push_back(std::move(state));
  }
  queues_.resize(count);
  if (config_.coalescing) {
    queued_counts_.resize(count);
  }

  if (config_.runtime == runtime_policy::threaded && count > 1) {
    // One worker per shard by default; explicit worker_threads clamps
    // to the shard count (shard s is confined to worker s % threads, so
    // extra workers could never receive work). A single-shard engine
    // stays on the calling thread: it is a pure pass-through with no
    // lanes to overlap, and spawning a worker would only add a hop.
    const std::uint32_t threads =
        config_.worker_threads == 0
            ? count
            : std::min(config_.worker_threads, count);
    reports_ = std::make_unique<runtime::mailbox<lane_report>>(count);
    // Job-queue capacity: a round posts at most ceil(count / threads)
    // jobs per worker; sizing boxes at the shard count means post()
    // never blocks the coordinator.
    pool_ = std::make_unique<runtime::worker_pool>(threads, count);
  }
}

engine::~engine() = default;

engine::engine(controller& external) : config_(external.config()) {
  config_.shard_count = 1;
  // The shim owns no device lane (and therefore no pad-id stream), so
  // it cannot run padded coalescing rounds; it stays the exact
  // pass-through regardless of the wrapped controller's config.
  config_.coalescing = false;
  route_key_ = make_route_key(config_.route_key_seed);
  round_cap_ = derive_round_cap();
  auto state = std::make_unique<shard_state>();
  state->config = config_;
  state->ctrl = &external;
  shards_.push_back(std::move(state));
  queues_.resize(1);
}

std::uint32_t engine::derive_round_cap() const {
  if (config_.shard_round_cap > 0) {
    return config_.shard_round_cap;
  }
  // Mirror of scheduler::round_budget at the widest stage: enough to
  // keep a shard's prefetch window full for a whole round.
  std::uint32_t max_c = 1;
  for (const scheduler_stage& stage : config_.stages) {
    max_c = std::max(max_c, stage.c);
  }
  return 2 * (config_.prefetch_factor * max_c + 1) + 4;
}

std::uint32_t engine::shard_of(oram::block_id id) const {
  expects(id < config_.block_count, "shard_of: id out of range");
  return shards_.size() == 1 ? 0 : shard_index_of_[id];
}

oram::block_id engine::shard_local_id(oram::block_id id) const {
  expects(id < config_.block_count, "shard_local_id: id out of range");
  return shards_.size() == 1 ? id : local_id_of_[id];
}

engine::lane_report engine::service_lane(lane_task&& task,
                                         sim::sim_time start) noexcept {
  lane_report report;
  report.shard = task.shard;
  report.physical = task.groups.size();
  for (const coalesce::group& g : task.groups) {
    report.reals += g.members.size();
  }
  try {
    shard_state& sh = *shards_[task.shard];
    const std::size_t physical = task.groups.size();
    std::vector<request> batch;
    batch.reserve(task.slots);
    for (coalesce::group& g : task.groups) {
      batch.push_back(std::move(g.physical));
    }
    for (std::size_t i = physical; i < task.slots; ++i) {
      request pad;
      pad.op = oram::op_kind::read;
      pad.id = util::uniform_below(sh.lane->pad_rng, sh.config.block_count);
      batch.push_back(std::move(pad));
    }

    // Padded lanes always collect results: the router needs the
    // hit/miss split of its own padding to keep stats()
    // application-level. The single-shard pass honors the caller's
    // choice exactly.
    const bool want_results = task.slots > physical || task.want_out;
    const sim::sim_time local_start = sh.ctrl->now();
    std::vector<request_result> results;
    sh.ctrl->run(batch, want_results ? &results : nullptr);

    if (want_results) {
      // Completion-ordering layer: shard-local sim-time offsets map
      // onto the global clock at the lane's start. Every group's mapped
      // time is computed before any fan-out: merged members complete at
      // the round frontier of their pop moment (member::order_hint),
      // which can be a *later* group's time than their own.
      std::vector<sim::sim_time> group_times(task.want_out ? physical : 0);
      sim::sim_time frontier = 0;
      for (std::size_t i = 0; i < group_times.size(); ++i) {
        results[i].completion_time =
            start + (results[i].completion_time - local_start);
        if (config_.coalescing) {
          // In-order retirement clamp: the controller can service a
          // resident hit before an *earlier* miss, so raw batch
          // completion times are not monotone in batch order. The
          // order_hint frontier rule needs group times monotone in
          // group index to keep per-tenant FIFO, so with coalescing on
          // the completion-ordering layer retires the round's groups in
          // order (each no earlier than any group ahead of it). Off
          // keeps the raw historical times bit-for-bit.
          frontier = std::max(frontier, results[i].completion_time);
          results[i].completion_time = frontier;
        }
        group_times[i] = results[i].completion_time;
      }
      for (std::size_t i = 0; i < physical && task.want_out; ++i) {
        // Fan the physical result out to every logical member (one
        // member per group with coalescing off, exactly the historical
        // completion stream).
        coalesce::fan_out(
            std::move(task.groups[i]), std::move(results[i]), group_times,
            sh.config.payload_bytes,
            [&report](std::uint64_t tag, request_result&& result) {
              completed done;
              done.tag = tag;
              done.result = std::move(result);
              report.completions.push_back(std::move(done));
            });
      }
      for (std::size_t i = physical; i < task.slots; ++i) {
        ++report.pad_requests;
        if (results[i].hit) {
          ++report.pad_hits;
        } else {
          ++report.pad_misses;
        }
      }
    }
    report.elapsed = sh.ctrl->now() - local_start;
  } catch (...) {
    // Workers must not throw (an escape would terminate the process);
    // the failure crosses back to the coordinator as data and is
    // rethrown there in shard-index order.
    report.error = std::current_exception();
  }
  return report;
}

std::vector<engine::lane_report> engine::run_lanes(
    std::vector<lane_task>&& tasks, sim::sim_time start) {
  std::vector<lane_report> reports(tasks.size());
  if (pool_ == nullptr || tasks.size() <= 1) {
    // Sim runtime (or a degenerate fan-out): lanes run sequentially on
    // the calling thread, failures surface immediately.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      reports[i] = service_lane(std::move(tasks[i]), start);
      if (reports[i].error != nullptr) {
        std::rethrow_exception(reports[i].error);
      }
    }
    return reports;
  }

  // Threaded runtime: shard s is pinned to worker s % threads (its
  // thread-confinement home), reports come back through the mailbox in
  // whatever order lanes finish and are placed by their task index.
  // Every report is collected before any error is rethrown — abandoning
  // in-flight lanes would leave workers pushing into a dead round.
  const std::size_t threads = pool_->size();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::size_t worker = tasks[i].shard % threads;
    const bool posted = pool_->post(
        worker, [this, task = std::move(tasks[i]), start, slot = i]() mutable {
          lane_report report = service_lane(std::move(task), start);
          report.slot = slot;
          reports_->push(std::move(report));
        });
    invariant(posted, "worker pool refused a lane job");
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    lane_report report;
    const bool popped = reports_->pop(report);
    invariant(popped, "report mailbox closed mid-round");
    invariant(report.slot < reports.size(), "lane report slot out of range");
    reports[report.slot] = std::move(report);
  }
  for (const lane_report& report : reports) {
    if (report.error != nullptr) {
      std::rethrow_exception(report.error);
    }
  }
  return reports;
}

void engine::log_rounds(std::uint64_t rounds) {
  for (std::uint64_t r = 0; r < rounds; ++r) {
    round_log_.push_back(
        std::vector<std::uint32_t>(shards_.size(), round_cap_));
    // Bounded window: long-lived services pump rounds forever, and the
    // audits only ever need the recent shape history.
    if (round_log_.size() > kRoundLogLimit) {
      round_log_.pop_front();
    }
  }
  stats_.rounds += rounds;
}

void engine::merge_report(lane_report&& report, std::vector<completed>* out,
                          sim::sim_time& longest) {
  // Lanes run in parallel: the round lasts its slowest shard.
  longest = std::max(longest, report.elapsed);
  stats_.real_requests += report.reals;
  stats_.physical_accesses += report.physical;
  stats_.coalesced_requests += report.reals - report.physical;
  stats_.pad_requests += report.pad_requests;
  stats_.pad_hits += report.pad_hits;
  stats_.pad_misses += report.pad_misses;
  if (out != nullptr) {
    for (completed& c : report.completions) {
      out->push_back(std::move(c));
    }
  }
}

std::uint64_t engine::execute_round(std::vector<std::deque<routed>>& queues,
                                    std::vector<completed>* out) {
  // Coalescing implies padded rounds on every shard count (including
  // one): merging changes how many real slots a round consumes, and
  // only a public, constant round shape keeps that invisible.
  const bool padded = shard_count() > 1 || config_.coalescing;
  const sim::sim_time round_start = now();
  const std::size_t out_base = out != nullptr ? out->size() : 0;

  // Phase 1 (coordinator): pop this round's real requests off the
  // routing queues into per-lane task messages. The round tables are
  // built here, before lane fan-out, so neither the queues nor the
  // tables ever cross a thread boundary.
  std::vector<lane_task> tasks;
  tasks.reserve(shard_count());
  std::uint64_t serviced = 0;
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    // Every shard executes the full public cap when padding is on —
    // real requests first, dummies after — so the per-shard bus shape
    // carries no information about the routed bucket sizes (or, with
    // coalescing, about how many requests merged).
    lane_task task;
    if (config_.coalescing) {
      // Prefix coalescing: consume the longest queue prefix whose
      // distinct block count fits the public cap. Stopping at the
      // first inadmissible entry (instead of skipping past it) keeps
      // per-tenant completion order intact.
      coalesce::round_table table(round_cap_);
      while (!queues[s].empty() && table.admits(queues[s].front().req.id)) {
        routed entry = std::move(queues[s].front());
        queues[s].pop_front();
        note_popped(s, entry.req.id);
        ++serviced;
        table.add(entry.tag, std::move(entry.req));
      }
      task.groups = table.take();
    } else {
      const std::size_t reals =
          padded ? std::min<std::size_t>(round_cap_, queues[s].size())
                 : queues[s].size();
      task.groups.reserve(reals);
      for (std::size_t i = 0; i < reals; ++i) {
        routed entry = std::move(queues[s].front());
        queues[s].pop_front();
        coalesce::group g;
        g.physical = std::move(entry.req);
        g.members.emplace_back().tag = entry.tag;
        task.groups.push_back(std::move(g));
      }
      serviced += reals;
    }
    const std::size_t slots = padded ? round_cap_ : task.groups.size();
    if (slots == 0) {
      continue;  // single-shard engine with an empty queue
    }
    task.shard = s;
    task.slots = slots;
    task.want_out = out != nullptr;
    tasks.push_back(std::move(task));
  }

  // Phase 2: execute the lanes — sequentially (sim) or on the
  // per-shard workers (threaded).
  std::vector<lane_report> reports =
      run_lanes(std::move(tasks), round_start);

  // Phase 3 (coordinator): merge reports in task (= shard-index)
  // order, the exact order the sequential machine produces, whatever
  // order the lanes actually finished in.
  sim::sim_time longest = 0;
  for (lane_report& report : reports) {
    merge_report(std::move(report), out, longest);
  }

  if (padded) {
    log_rounds(1);
    global_now_ = round_start + longest;
    if (out != nullptr) {
      std::stable_sort(
          out->begin() + static_cast<std::ptrdiff_t>(out_base), out->end(),
          [](const completed& a, const completed& b) {
            return a.result.completion_time < b.result.completion_time;
          });
    }
  }
  return serviced;
}

std::uint64_t engine::run_buckets(std::vector<std::deque<routed>>& buckets,
                                  std::vector<completed>* out) {
  const bool padded = shard_count() > 1 || config_.coalescing;
  const sim::sim_time start = now();
  // note_popped bookkeeping only applies to the engine's own routing
  // queues (drain); run() hands in local buckets that were never
  // submitted and carry no slot accounting.
  const bool own_queues = &buckets == &queues_;

  // Open-loop batch execution: the whole bucket is known up front, so
  // every lane runs independently — one controller batch per shard,
  // padded up to a whole number of public-cap rounds — and the batch
  // lasts the slowest lane. (The closed-loop incremental pump uses
  // execute_round instead: one cap-sized round per step.) With
  // coalescing the table is unbounded: the batch merges across the
  // whole bucket, then sizes its padding from the distinct-block count.
  std::vector<lane_task> tasks;
  tasks.reserve(shard_count());
  std::uint64_t serviced = 0;
  std::uint64_t rounds = 0;
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    lane_task task;
    if (config_.coalescing) {
      coalesce::round_table table;
      while (!buckets[s].empty()) {
        routed entry = std::move(buckets[s].front());
        buckets[s].pop_front();
        if (own_queues) {
          note_popped(s, entry.req.id);
        }
        ++serviced;
        table.add(entry.tag, std::move(entry.req));
      }
      task.groups = table.take();
    } else {
      task.groups.reserve(buckets[s].size());
      while (!buckets[s].empty()) {
        routed entry = std::move(buckets[s].front());
        buckets[s].pop_front();
        coalesce::group g;
        g.physical = std::move(entry.req);
        g.members.emplace_back().tag = entry.tag;
        task.groups.push_back(std::move(g));
        ++serviced;
      }
    }
    if (padded) {
      const std::uint64_t need =
          (task.groups.size() + round_cap_ - 1) / round_cap_;
      rounds = std::max(rounds, need);
    }
    task.shard = s;
    task.want_out = out != nullptr;
    tasks.push_back(std::move(task));
  }
  if (padded && rounds == 0) {
    return 0;
  }
  for (auto it = tasks.begin(); it != tasks.end();) {
    it->slots = padded ? rounds * round_cap_ : it->groups.size();
    if (it->slots == 0) {
      it = tasks.erase(it);  // single-shard engine with an empty bucket
    } else {
      ++it;
    }
  }

  std::vector<lane_report> reports = run_lanes(std::move(tasks), start);

  sim::sim_time longest = 0;
  for (lane_report& report : reports) {
    merge_report(std::move(report), out, longest);
  }

  if (padded) {
    log_rounds(rounds);
    global_now_ = start + longest;
  }
  return serviced;
}

void engine::run(std::span<const request> requests,
                 std::vector<request_result>* results) {
  for (const request& req : requests) {
    expects(req.id < config_.block_count, "request id out of range");
  }
  if (shard_count() == 1 && !config_.coalescing) {
    // Exact historical path: one controller, one batch.
    shards_[0]->ctrl->run(requests, results);
    stats_.real_requests += requests.size();
    stats_.physical_accesses += requests.size();
    return;
  }
  if (results != nullptr) {
    results->assign(requests.size(), request_result{});
  }
  std::vector<std::deque<routed>> buckets(shard_count());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    routed entry;
    entry.tag = i;
    entry.req = requests[i];
    entry.req.id = shard_local_id(requests[i].id);
    buckets[shard_of(requests[i].id)].push_back(std::move(entry));
  }
  std::vector<completed> done;
  (void)run_buckets(buckets, results != nullptr ? &done : nullptr);
  if (results != nullptr) {
    for (completed& c : done) {
      (*results)[c.tag] = std::move(c.result);
    }
  }
}

std::uint64_t engine::submit(request req) {
  expects(req.id < config_.block_count, "request id out of range");
  const std::uint32_t s = shard_of(req.id);
  routed entry;
  entry.tag = next_token_++;
  entry.req = std::move(req);
  entry.req.id = shard_local_id(entry.req.id);
  const std::uint64_t token = entry.tag;
  const oram::block_id local = entry.req.id;
  queues_[s].push_back(std::move(entry));
  ++pending_total_;
  if (config_.coalescing) {
    // Slot accounting: a round slot is a *distinct* queued block, not a
    // queued request — the pump reads pending_slots() so one physical
    // access retiring many tickets doesn't under-fill rounds.
    if (queued_counts_[s][local]++ == 0) {
      ++pending_slots_;
    }
  }
  return token;
}

void engine::note_popped(std::uint32_t s, oram::block_id local) noexcept {
  if (!config_.coalescing) {
    return;
  }
  const auto it = queued_counts_[s].find(local);
  invariant(it != queued_counts_[s].end() && it->second > 0,
            "pop of a block with no queued count");
  if (--it->second == 0) {
    queued_counts_[s].erase(it);
    --pending_slots_;
  }
}

bool engine::step_round(const completion& on_complete) {
  if (pending_total_ == 0) {
    return false;
  }
  std::vector<completed> done;
  const std::uint64_t serviced =
      execute_round(queues_, on_complete ? &done : nullptr);
  pending_total_ -= serviced;
  if (on_complete) {
    for (completed& c : done) {
      on_complete(c.tag, std::move(c.result));
    }
  }
  return true;
}

void engine::drain(std::vector<request_result>* results) {
  if (results != nullptr) {
    results->clear();
  }
  if (pending_total_ == 0) {
    return;
  }
  // The queue snapshot is a known batch: open-loop lane execution.
  std::vector<completed> done;
  pending_total_ -=
      run_buckets(queues_, results != nullptr ? &done : nullptr);
  invariant(pending_total_ == 0, "drain left requests behind");
  if (results != nullptr) {
    // Tokens are monotone in submission order.
    std::sort(done.begin(), done.end(),
              [](const completed& a, const completed& b) {
                return a.tag < b.tag;
              });
    results->reserve(done.size());
    for (completed& c : done) {
      results->push_back(std::move(c.result));
    }
  }
}

std::uint64_t engine::round_budget() const {
  return shards_.size() == 1
             ? shards_[0]->ctrl->round_budget()
             : static_cast<std::uint64_t>(shard_count()) * round_cap_;
}

sim::sim_time engine::now() const noexcept {
  return shards_.size() == 1 ? shards_[0]->ctrl->now() : global_now_;
}

const controller_stats& engine::stats() const noexcept {
  controller_stats total;
  for (const std::unique_ptr<shard_state>& sh : shards_) {
    total += sh->ctrl->stats();
  }
  // The router's padding traffic is invisible to applications: strip it
  // from the request-level counters, keep the resource counters raw.
  total.requests -= std::min(total.requests, stats_.pad_requests);
  total.hits -= std::min(total.hits, stats_.pad_hits);
  total.misses -= std::min(total.misses, stats_.pad_misses);
  // Coalesced members never reached a controller, but they are real
  // application requests served from the round table in trusted memory:
  // add them back as control-layer hits so the counters stay
  // application-level. Zero with coalescing off.
  total.requests += stats_.coalesced_requests;
  total.hits += stats_.coalesced_requests;
  if (shards_.size() > 1) {
    total.total_time = global_now_ - stats_epoch_;
  }
  aggregate_ = total;
  return aggregate_;
}

void engine::reset_stats() noexcept {
  for (const std::unique_ptr<shard_state>& sh : shards_) {
    sh->ctrl->reset_stats();
    if (sh->lane != nullptr) {
      sh->lane->storage.reset_stats();
      sh->lane->memory.reset_stats();
    }
  }
  stats_ = engine_stats{};
  round_log_.clear();
  stats_epoch_ = now();
}

controller& engine::shard(std::uint32_t index) {
  expects(index < shards_.size(), "shard index out of range");
  return *shards_[index]->ctrl;
}

const controller& engine::shard(std::uint32_t index) const {
  expects(index < shards_.size(), "shard index out of range");
  return *shards_[index]->ctrl;
}

sim::block_device& engine::shard_storage(std::uint32_t index) {
  expects(index < shards_.size(), "shard index out of range");
  expects(shards_[index]->lane != nullptr,
          "external-controller engines own no device lane");
  return shards_[index]->lane->storage;
}

const sim::block_device& engine::shard_storage(std::uint32_t index) const {
  expects(index < shards_.size(), "shard index out of range");
  expects(shards_[index]->lane != nullptr,
          "external-controller engines own no device lane");
  return shards_[index]->lane->storage;
}

sim::block_device& engine::shard_memory(std::uint32_t index) {
  expects(index < shards_.size(), "shard index out of range");
  expects(shards_[index]->lane != nullptr,
          "external-controller engines own no device lane");
  return shards_[index]->lane->memory;
}

const sim::block_device& engine::shard_memory(std::uint32_t index) const {
  expects(index < shards_.size(), "shard index out of range");
  expects(shards_[index]->lane != nullptr,
          "external-controller engines own no device lane");
  return shards_[index]->lane->memory;
}

const oram::access_trace* engine::shard_trace(std::uint32_t index) const {
  expects(index < shards_.size(), "shard index out of range");
  const shard_state& sh = *shards_[index];
  return sh.lane != nullptr && sh.lane->trace.has_value()
             ? &*sh.lane->trace
             : nullptr;
}

std::span<const oram::block_id> engine::shard_blocks(
    std::uint32_t index) const {
  expects(index < shards_.size(), "shard index out of range");
  return shards_[index]->blocks;
}

std::uint64_t engine::control_memory_bytes() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<shard_state>& sh : shards_) {
    total += sh->ctrl->control_memory_bytes();
    total += sh->blocks.size() * sizeof(oram::block_id);
  }
  total += shard_index_of_.size() * sizeof(std::uint32_t);
  total += local_id_of_.size() * sizeof(oram::block_id);
  return total;
}

}  // namespace horam
