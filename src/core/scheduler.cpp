#include "core/scheduler.h"

#include <algorithm>

#include "util/contracts.h"

namespace horam {

scheduler::scheduler(std::vector<scheduler_stage> stages,
                     std::uint64_t period_loads,
                     std::uint32_t prefetch_factor)
    : stages_(std::move(stages)), prefetch_factor_(prefetch_factor) {
  expects(!stages_.empty(), "scheduler needs at least one stage");
  expects(period_loads > 0, "period must allow at least one load");
  expects(prefetch_factor_ >= 1, "prefetch factor must be >= 1");

  // Convert stage fractions into cumulative load boundaries; the last
  // stage always extends to the end of the period.
  boundaries_.reserve(stages_.size());
  double cumulative = 0.0;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    cumulative += stages_[s].fraction;
    const auto boundary = static_cast<std::uint64_t>(
        cumulative * static_cast<double>(period_loads) + 0.5);
    boundaries_.push_back(
        s + 1 == stages_.size() ? period_loads : std::min(boundary,
                                                          period_loads));
  }
}

std::uint32_t scheduler::group_size(std::uint64_t loads_done) const {
  const std::uint64_t within = loads_done % boundaries_.back();
  for (std::size_t s = 0; s < boundaries_.size(); ++s) {
    if (within < boundaries_[s]) {
      return stages_[s].c;
    }
  }
  return stages_.back().c;
}

std::uint64_t scheduler::window(std::uint64_t loads_done) const {
  // d > c always holds: d = factor * c + 1 with factor >= 1.
  return static_cast<std::uint64_t>(prefetch_factor_) *
             group_size(loads_done) +
         1;
}

std::uint64_t scheduler::round_budget(std::uint64_t loads_done) const {
  return 2 * window(loads_done) + 4;
}

cycle_plan scheduler::plan(
    const rob_table& rob, std::uint64_t loads_done,
    const std::function<oram::block_id(std::uint64_t)>& id_of_request,
    const std::function<bool(oram::block_id)>& resident) const {
  cycle_plan plan;
  plan.c = group_size(loads_done);
  const std::size_t scan =
      std::min<std::size_t>(rob.size(), window(loads_done));

  for (std::size_t position = 0; position < scan; ++position) {
    const rob_table::entry& entry = rob.at(position);
    if (entry.loading) {
      continue;  // arrives at the end of this cycle; serviceable next
    }
    const oram::block_id id = id_of_request(entry.request_index);
    if (resident(id)) {
      if (plan.hit_positions.size() < plan.c) {
        plan.hit_positions.push_back(position);
      }
    } else if (!plan.miss_position.has_value()) {
      plan.miss_position = position;
    }
    if (plan.hit_positions.size() == plan.c &&
        plan.miss_position.has_value()) {
      break;
    }
  }
  plan.dummy_hits = plan.c - static_cast<std::uint32_t>(
                                 plan.hit_positions.size());
  return plan;
}

}  // namespace horam
