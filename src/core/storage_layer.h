// H-ORAM storage layer (§4.1.3) plus its control-layer bookkeeping.
//
// The flat dataset lives in ~sqrt(N) partitions on the storage device.
// The control layer keeps the paper's "permutation list": per block, a
// bit saying whether it is currently cached in memory and, if not, its
// exact storage location (main slot or, under partial shuffling, a slot
// in a pending append segment).
//
// Per access period every observable storage read touches a distinct,
// uniformly distributed not-yet-accessed slot: real misses consume the
// target block's slot (uniform because the layout is a fresh random
// permutation); dummy loads draw a uniform unaccessed slot directly —
// and opportunistically cache any live block found there. The per-
// partition pools of unaccessed slots are Fenwick-indexed so dummy
// draws are O(log P).
//
// The shuffle period (§4.3.2) merges evicted hot blocks into the
// partitions: every due partition is streamed in, re-permuted in
// trusted memory together with its share of hot data, and streamed
// back out at a fixed physical size (dummy padding hides occupancy).
// With partial shuffling (§5.3.1) only 1/k of the partitions are due
// each period; the others receive a fixed-size append segment, and
// misses to a partition with s pending segments issue s extra masking
// reads ("the less we shuffle, the more redundant accesses").
//
// config.layout (storage/page_layout.h) is neutral here by design: the
// scheme's foreground accesses are single-slot draws from a random
// permutation — there is no path to pack into a page — and its shuffle
// already streams whole partitions as maximal sequential sweeps, which
// is exactly what the page layout would degenerate to. The knob only
// changes the tree-resident lane of the path backend.
#ifndef HORAM_CORE_STORAGE_LAYER_H
#define HORAM_CORE_STORAGE_LAYER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/oram_backend.h"
#include "oram/common/access_trace.h"
#include "oram/common/block_codec.h"
#include "oram/common/types.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "storage/partitioned_store.h"
#include "util/fenwick.h"
#include "util/rng.h"

namespace horam {

/// Counters of the storage layer (the shared backend counter set).
using storage_layer_stats = backend_stats;

class storage_layer final : public oram_backend {
 public:
  /// Builds the initial permuted layout holding every block in
  /// [0, config.block_count); `filler` provides initial payloads (null =
  /// zero-filled). Device statistics are reset afterwards so
  /// initialisation is not measured.
  storage_layer(const horam_config& config, sim::block_device& device,
                const sim::cpu_model& cpu, util::random_source& rng,
                oram::access_trace* trace,
                const std::function<void(oram::block_id,
                                         std::span<std::uint8_t>)>* filler);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "partitioned";
  }

  /// True iff the live copy of `id` is on storage (not cached).
  [[nodiscard]] bool in_storage(oram::block_id id) const override;

  /// Loads the live copy of `id` (must be in storage); marks it cached.
  /// Issues the partial-shuffle masking reads for its partition.
  load_result load_block(oram::block_id id) override;

  /// Loads a uniformly random unaccessed slot; any live block found
  /// becomes cached (prefetch).
  load_result dummy_load() override;

  /// Runs one shuffle period: re-permutes due partitions merged with
  /// their share of `evicted` hot blocks (plus any reinjected overflow)
  /// and appends fixed-size segments to the rest. Blocks that cannot be
  /// placed are moved to `overflow_out` (control-layer shelter).
  /// Implemented as begin_shuffle() driven to completion in one
  /// unbounded step, so the monolithic and incremental entry points
  /// are interchangeable by construction.
  shuffle_cost shuffle_period(
      std::vector<oram::evicted_block> evicted, std::uint64_t period_index,
      std::vector<oram::evicted_block>& overflow_out) override;

  /// Native incremental shuffle: the hot set is assigned to partitions
  /// up front, then each step() processes whole partitions — a due
  /// partition's stream-in/merge/re-permute/stream-out, or a pending
  /// partition's append segment — until the slice budget is spent.
  /// Partition order and per-partition work are workload-independent
  /// by construction (fixed physical sizes, left-to-right sweep).
  [[nodiscard]] std::unique_ptr<shuffle_job> begin_shuffle(
      std::vector<oram::evicted_block> evicted,
      std::uint64_t period_index) override;

  [[nodiscard]] const storage_layer_stats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] const storage::partition_geometry& geometry() const noexcept {
    return store_->geometry();
  }
  /// Physical bytes the storage layout occupies (reporting).
  [[nodiscard]] std::uint64_t physical_bytes() const override;
  /// Permutation list + unaccessed-slot pools (Figure 4-1 report).
  [[nodiscard]] std::uint64_t control_memory_bytes() const override;
  [[nodiscard]] std::uint64_t pending_segments(std::uint64_t partition) const;
  [[nodiscard]] std::uint64_t unaccessed_slot_count() const;

  /// Deep consistency audit of the control-layer state: every block's
  /// location agrees with the slot contents, pools and the Fenwick
  /// index agree with each other, and the live block count equals N.
  /// Throws contract_error on the first inconsistency (tests call this
  /// after stress runs; O(N + slots)).
  void check_consistency() const override;

 private:
  friend class partitioned_shuffle_job;

  enum class residence : std::uint8_t { memory, main_slot, append_slot };
  struct location {
    residence where = residence::memory;
    std::uint32_t partition = 0;
    std::uint32_t index = 0;  // main slot or append-region slot
  };

  /// Planned period: the hot set dealt to its target partitions, plus
  /// the blocks no partition could take.
  struct shuffle_plan {
    std::uint64_t period_index = 0;
    std::vector<std::vector<oram::evicted_block>> hot;
    std::vector<oram::evicted_block> overflow;
  };

  /// Assigns `evicted` across partitions (uniform with rejection, then
  /// a deterministic fallback) — the monolithic shuffle's planning
  /// phase, shared with the incremental job.
  shuffle_plan plan_shuffle(std::vector<oram::evicted_block> evicted,
                            std::uint64_t period_index);
  /// Processes partition `p` of the plan: due partitions merge + re-
  /// permute, pending ones take their append segment. Excess blocks go
  /// to plan.overflow.
  shuffle_cost shuffle_partition_step(shuffle_plan& plan, std::uint64_t p);

  /// Local slot code: [0, main_capacity) = main region;
  /// [main_capacity, ...) = append region.
  [[nodiscard]] std::uint32_t code_of(const location& loc) const;
  /// Partial-shuffle masking: one extra dead-slot read per pending
  /// segment of `partition`, issued for real and dummy loads alike so
  /// the per-load read count depends only on the partition touched.
  oram::cost_split masking_reads(std::uint64_t partition);
  void pool_insert(std::uint64_t partition, std::uint32_t code);
  void pool_remove(std::uint64_t partition, std::uint32_t code);
  /// Reads + decodes the slot with local `code`; marks it accessed.
  oram::cost_split consume_slot(std::uint64_t partition, std::uint32_t code,
                                oram::block_id& decoded_out);
  /// Places `id` as cached-in-memory after a load.
  void mark_cached(oram::block_id id);

  horam_config config_;
  oram::block_codec codec_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  oram::access_trace* trace_;

  std::unique_ptr<storage::partitioned_store> store_;
  std::uint64_t segment_capacity_ = 0;

  std::vector<location> locations_;
  /// contents[p][code] = live block at that local slot (dummy if none).
  std::vector<std::vector<oram::block_id>> contents_;
  /// Unaccessed-slot pools, one per partition, with O(1) removal.
  std::vector<std::vector<std::uint32_t>> pool_;
  std::vector<std::vector<std::uint32_t>> pool_position_;
  util::fenwick_tree pool_weight_;
  std::vector<std::uint32_t> pending_segments_;

  storage_layer_stats stats_;
  std::vector<std::uint8_t> record_scratch_;
  std::vector<std::uint8_t> payload_scratch_;
  /// Partition-image scratch reused across shuffle_partition_step
  /// calls (MB-scale at bench geometry; one allocation per layer, not
  /// per partition or per slice).
  std::vector<std::uint8_t> shuffle_image_scratch_;
  std::vector<std::uint8_t> shuffle_out_scratch_;
};

}  // namespace horam

#endif  // HORAM_CORE_STORAGE_LAYER_H
