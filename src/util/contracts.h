// Contract checking helpers (C++ Core Guidelines I.5/I.7: state pre- and
// postconditions). Violations throw, so tests can assert on them and
// simulations fail loudly instead of corrupting state.
#ifndef HORAM_UTIL_CONTRACTS_H
#define HORAM_UTIL_CONTRACTS_H

#include <stdexcept>
#include <string>

namespace horam {

/// Thrown when a precondition, postcondition or internal invariant fails.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

/// Precondition check: call at function entry.
constexpr void expects(bool condition, const char* message) {
  if (!condition) {
    throw contract_error(std::string("precondition failed: ") + message);
  }
}

/// Postcondition check: call before returning.
constexpr void ensures(bool condition, const char* message) {
  if (!condition) {
    throw contract_error(std::string("postcondition failed: ") + message);
  }
}

/// Internal invariant check: call wherever a broken invariant would
/// otherwise propagate silently.
constexpr void invariant(bool condition, const char* message) {
  if (!condition) {
    throw contract_error(std::string("invariant failed: ") + message);
  }
}

}  // namespace horam

#endif  // HORAM_UTIL_CONTRACTS_H
