// Console table rendering for the benchmark harnesses. Each bench prints
// the same rows the paper's tables report; this keeps the formatting in
// one place.
#ifndef HORAM_UTIL_TABLE_H
#define HORAM_UTIL_TABLE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace horam::util {

/// A simple left-aligned text table with a header row.
///
/// Usage:
///   text_table t({"Metric", "H-ORAM", "Path ORAM"});
///   t.add_row({"Total Time", "1290 ms", "25575 ms"});
///   t.print(std::cout);
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  /// Appends one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table with aligned columns.
  void print(std::ostream& out) const;

  /// Renders the table as comma-separated values (header + data rows).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  // A row with zero cells encodes a separator.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count with a binary-unit suffix ("64 MB", "1.875 GB").
std::string format_bytes(std::uint64_t bytes);

/// Formats a nanosecond count with an adaptive unit ("77 us", "1290 ms").
std::string format_time_ns(std::int64_t ns);

/// Formats a double with the given number of decimal places.
std::string format_double(double value, int decimals = 2);

/// Formats an integer with thousands separators ("262,144").
std::string format_count(std::uint64_t value);

}  // namespace horam::util

#endif  // HORAM_UTIL_TABLE_H
