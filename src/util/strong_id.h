// Strongly typed integer identifiers (C++ Core Guidelines I.4). Block
// ids, leaf ids, partition ids and storage slots are all 64-bit integers;
// wrapping them in distinct types prevents the classic "passed the leaf
// where the slot was expected" bug family across the ORAM layers.
#ifndef HORAM_UTIL_STRONG_ID_H
#define HORAM_UTIL_STRONG_ID_H

#include <compare>
#include <cstdint>
#include <functional>

namespace horam::util {

/// A 64-bit identifier distinguished at compile time by its Tag.
template <typename Tag>
class strong_id {
 public:
  constexpr strong_id() noexcept = default;
  constexpr explicit strong_id(std::uint64_t value) noexcept
      : value_(value) {}

  /// The underlying integer; use at serialisation and arithmetic borders.
  [[nodiscard]] constexpr std::uint64_t value() const noexcept {
    return value_;
  }

  friend constexpr auto operator<=>(strong_id, strong_id) noexcept = default;

 private:
  std::uint64_t value_ = 0;
};

}  // namespace horam::util

/// Hash support so strong ids can key unordered containers.
template <typename Tag>
struct std::hash<horam::util::strong_id<Tag>> {
  std::size_t operator()(
      const horam::util::strong_id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};

#endif  // HORAM_UTIL_STRONG_ID_H
