// Random number generation.
//
// Two kinds of generators exist in this codebase:
//   * horam::util::pcg64        — fast deterministic PRNG for workloads,
//                                 test data and simulation decisions.
//   * horam::crypto::chacha_rng — CSPRNG for security-relevant choices
//                                 (leaf remapping, permutations).
// Both derive from random_source so ORAM code can accept either without
// being templated on the engine.
#ifndef HORAM_UTIL_RNG_H
#define HORAM_UTIL_RNG_H

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/contracts.h"

namespace horam::util {

namespace detail {
// 128-bit arithmetic for PCG state and Lemire reduction. __extension__
// silences -Wpedantic: __int128 is a GCC/Clang extension, which this
// codebase targets.
__extension__ using uint128 = unsigned __int128;
}  // namespace detail

/// Abstract stream of uniformly distributed 64-bit words.
class random_source {
 public:
  virtual ~random_source() = default;

  /// Returns the next uniformly distributed 64-bit value.
  virtual std::uint64_t next_u64() = 0;

  // Satisfies std::uniform_random_bit_generator so generators can be used
  // with <algorithm> and <random> facilities directly.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }
};

/// PCG-XSL-RR 128/64: O'Neill's PCG64. Deterministic, 2^128 period,
/// independent streams selected by the sequence constant.
class pcg64 final : public random_source {
 public:
  /// Seeds the generator; distinct (seed, stream) pairs give independent
  /// sequences.
  explicit pcg64(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (static_cast<detail::uint128>(stream) << 1u) | 1u;
    next_u64();
    state_ += seed;
    next_u64();
  }

  std::uint64_t next_u64() override {
    const detail::uint128 old = state_;
    state_ = old * multiplier() + inc_;
    const std::uint64_t xored =
        static_cast<std::uint64_t>(old >> 64) ^ static_cast<std::uint64_t>(old);
    const unsigned rot = static_cast<unsigned>(old >> 122);
    return (xored >> rot) | (xored << ((64 - rot) & 63));
  }

 private:
  static constexpr detail::uint128 multiplier() {
    return (static_cast<detail::uint128>(2549297995355413924ULL) << 64) |
           4865540595714422341ULL;
  }

  detail::uint128 state_ = 0;
  detail::uint128 inc_ = 0;
};

/// Uniform value in [0, bound) without modulo bias (Lemire's method);
/// bound must be nonzero.
inline std::uint64_t uniform_below(random_source& rng, std::uint64_t bound) {
  expects(bound != 0, "uniform_below with zero bound");
  detail::uint128 product =
      static_cast<detail::uint128>(rng.next_u64()) * bound;
  auto low = static_cast<std::uint64_t>(product);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      product = static_cast<detail::uint128>(rng.next_u64()) * bound;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::uint64_t>(product >> 64);
}

/// Uniform value in the closed interval [lo, hi].
inline std::uint64_t uniform_in(random_source& rng, std::uint64_t lo,
                                std::uint64_t hi) {
  expects(lo <= hi, "uniform_in with empty range");
  return lo + uniform_below(rng, hi - lo + 1);
}

/// Uniform double in [0, 1).
inline double uniform_unit(random_source& rng) {
  // 53 random mantissa bits.
  return static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
}

/// Bernoulli trial with success probability p in [0, 1].
inline bool bernoulli(random_source& rng, double p) {
  return uniform_unit(rng) < p;
}

/// In-place Fisher-Yates shuffle. Unbiased given an unbiased source.
template <typename T>
void shuffle_span(random_source& rng, std::span<T> values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_below(rng, i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

/// Returns a uniformly random permutation of {0, ..., n-1}.
std::vector<std::uint64_t> random_permutation(random_source& rng,
                                              std::uint64_t n);

}  // namespace horam::util

#endif  // HORAM_UTIL_RNG_H
