#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/contracts.h"

namespace horam::util {

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {
  expects(!header_.empty(), "table needs at least one column");
}

void text_table::add_row(std::vector<std::string> cells) {
  expects(cells.size() == header_.size(),
          "row width must match header width");
  rows_.push_back(std::move(cells));
}

void text_table::add_separator() { rows_.emplace_back(); }

void text_table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_rule = [&] {
    out << '+';
    for (const std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
  print_rule();
}

void text_table::print_csv(std::ostream& out) const {
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << cells[c];
    }
    out << '\n';
  };
  print_cells(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) {
      print_cells(row);
    }
  }
}

namespace {

std::string trim_number(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  std::string text(buffer);
  // Drop trailing zeros and a dangling decimal point for compact output.
  if (text.find('.') != std::string::npos) {
    while (text.back() == '0') {
      text.pop_back();
    }
    if (text.back() == '.') {
      text.pop_back();
    }
  }
  return text;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kib = 1024;
  constexpr std::uint64_t mib = 1024 * kib;
  constexpr std::uint64_t gib = 1024 * mib;
  if (bytes >= gib) {
    return trim_number(static_cast<double>(bytes) / static_cast<double>(gib),
                       3) +
           " GB";
  }
  if (bytes >= mib) {
    return trim_number(static_cast<double>(bytes) / static_cast<double>(mib),
                       2) +
           " MB";
  }
  if (bytes >= kib) {
    return trim_number(static_cast<double>(bytes) / static_cast<double>(kib),
                       2) +
           " KB";
  }
  return std::to_string(bytes) + " B";
}

std::string format_time_ns(std::int64_t ns) {
  const double abs_ns = static_cast<double>(ns < 0 ? -ns : ns);
  if (abs_ns >= 1e9) {
    return trim_number(static_cast<double>(ns) / 1e9, 2) + " s";
  }
  if (abs_ns >= 1e6) {
    return trim_number(static_cast<double>(ns) / 1e6, 2) + " ms";
  }
  if (abs_ns >= 1e3) {
    return trim_number(static_cast<double>(ns) / 1e3, 2) + " us";
  }
  return std::to_string(ns) + " ns";
}

std::string format_double(double value, int decimals) {
  return trim_number(value, decimals);
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) {
    lead = 3;
  }
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
      grouped.push_back(',');
    }
    grouped.push_back(digits[i]);
  }
  return grouped;
}

}  // namespace horam::util
