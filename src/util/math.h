// Small integer math helpers used throughout the ORAM layers.
// All functions are constexpr and total (they validate their inputs at
// run time via contracts where a silent wrap would be dangerous).
#ifndef HORAM_UTIL_MATH_H
#define HORAM_UTIL_MATH_H

#include <cstdint>

#include "util/contracts.h"

namespace horam::util {

/// True iff v is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// floor(log2(v)); v must be nonzero.
constexpr unsigned floor_log2(std::uint64_t v) {
  expects(v != 0, "floor_log2 of zero");
  unsigned level = 0;
  while (v >>= 1) {
    ++level;
  }
  return level;
}

/// ceil(log2(v)); v must be nonzero. ceil_log2(1) == 0.
constexpr unsigned ceil_log2(std::uint64_t v) {
  expects(v != 0, "ceil_log2 of zero");
  const unsigned fl = floor_log2(v);
  return is_pow2(v) ? fl : fl + 1;
}

/// Smallest power of two >= v; v must be nonzero and representable.
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  expects(v != 0, "next_pow2 of zero");
  return std::uint64_t{1} << ceil_log2(v);
}

/// ceil(a / b); b must be nonzero.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  expects(b != 0, "ceil_div by zero");
  return (a + b - 1) / b;
}

/// floor(sqrt(v)) computed with integer Newton iteration (exact).
constexpr std::uint64_t isqrt(std::uint64_t v) noexcept {
  if (v < 2) {
    return v;
  }
  std::uint64_t x = v;
  std::uint64_t y = (x + 1) / 2;
  while (y < x) {
    x = y;
    y = (x + v / x) / 2;
  }
  return x;
}

/// ceil(sqrt(v)).
constexpr std::uint64_t isqrt_ceil(std::uint64_t v) noexcept {
  const std::uint64_t r = isqrt(v);
  return r * r == v ? r : r + 1;
}

}  // namespace horam::util

#endif  // HORAM_UTIL_MATH_H
