// Byte-size and time-unit constants shared by configuration code and the
// simulator. Times are carried as signed 64-bit nanosecond counts
// (horam::sim::sim_time); sizes as unsigned 64-bit byte counts.
#ifndef HORAM_UTIL_UNITS_H
#define HORAM_UTIL_UNITS_H

#include <cstdint>

namespace horam::util {

inline constexpr std::uint64_t kib = 1024;
inline constexpr std::uint64_t mib = 1024 * kib;
inline constexpr std::uint64_t gib = 1024 * mib;

inline constexpr std::int64_t nanoseconds = 1;
inline constexpr std::int64_t microseconds = 1000 * nanoseconds;
inline constexpr std::int64_t milliseconds = 1000 * microseconds;
inline constexpr std::int64_t seconds = 1000 * milliseconds;

/// Converts a nanosecond count to floating-point milliseconds (reporting).
constexpr double ns_to_ms(std::int64_t ns) noexcept {
  return static_cast<double>(ns) / 1e6;
}

/// Converts a nanosecond count to floating-point microseconds (reporting).
constexpr double ns_to_us(std::int64_t ns) noexcept {
  return static_cast<double>(ns) / 1e3;
}

/// Converts a nanosecond count to floating-point seconds (reporting).
constexpr double ns_to_s(std::int64_t ns) noexcept {
  return static_cast<double>(ns) / 1e9;
}

}  // namespace horam::util

#endif  // HORAM_UTIL_UNITS_H
