#include "util/rng.h"

#include <numeric>

namespace horam::util {

std::vector<std::uint64_t> random_permutation(random_source& rng,
                                              std::uint64_t n) {
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::uint64_t{0});
  shuffle_span(rng, std::span<std::uint64_t>(perm));
  return perm;
}

}  // namespace horam::util
