// Fenwick (binary indexed) tree over non-negative integer weights.
//
// The H-ORAM storage layer keeps one weight per partition (its count of
// not-yet-accessed slots) and must repeatedly draw a partition with
// probability proportional to that count; the Fenwick tree gives
// O(log P) update and weighted sampling instead of an O(P) scan per
// dummy load.
#ifndef HORAM_UTIL_FENWICK_H
#define HORAM_UTIL_FENWICK_H

#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace horam::util {

/// Prefix-sum tree over fixed-size array of non-negative weights.
class fenwick_tree {
 public:
  explicit fenwick_tree(std::size_t size) : tree_(size + 1, 0) {}

  [[nodiscard]] std::size_t size() const noexcept {
    return tree_.size() - 1;
  }

  /// Adds `delta` (may be negative) to the weight at `index`.
  void add(std::size_t index, std::int64_t delta) {
    expects(index < size(), "fenwick index out of range");
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of weights in [0, index).
  [[nodiscard]] std::int64_t prefix_sum(std::size_t index) const {
    expects(index <= size(), "fenwick prefix out of range");
    std::int64_t sum = 0;
    for (std::size_t i = index; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  /// Total weight.
  [[nodiscard]] std::int64_t total() const { return prefix_sum(size()); }

  /// Smallest index such that prefix_sum(index + 1) > target, i.e. the
  /// element that covers offset `target` when the weights are laid out
  /// consecutively. target must be < total().
  [[nodiscard]] std::size_t find_by_offset(std::int64_t target) const {
    expects(target >= 0 && target < total(),
            "weighted-sample offset out of range");
    std::size_t position = 0;
    std::size_t mask = 1;
    while (mask * 2 <= size()) {
      mask *= 2;
    }
    for (; mask > 0; mask /= 2) {
      const std::size_t next = position + mask;
      if (next < tree_.size() && tree_[next] <= target) {
        position = next;
        target -= tree_[next];
      }
    }
    return position;  // 0-based element index
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace horam::util

#endif  // HORAM_UTIL_FENWICK_H
