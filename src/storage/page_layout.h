// Page-optimized bucket layout for tree-resident storage lanes.
//
// The flat layout stores a Path ORAM tree bucket-by-bucket: a path
// access issues one device operation per level, so every bucket pays
// the device's per-op + seek charge. This layout instead packs complete
// depth-h subtrees ("segments") of the storage-resident levels into
// device pages: the h buckets a path touches inside one segment arrive
// with a single range transfer, so a path of L storage levels costs
// ceil(L / h) operations instead of L. The group height h derives from
// the configured page size — h = floor(log2(buckets_per_page + 1)),
// floored at 1, where buckets_per_page counts whole timing-size buckets
// per page — so `page_bytes` below one bucket degenerates to the flat
// op pattern (h = 1, one bucket per segment).
//
// Layout on the device (slot space of the storage lane's block_store):
// levels are partitioned into groups of h consecutive levels starting
// at `first_level` (the shallower levels live in trusted memory); the
// last group may be shorter. Each group stores its segments — one per
// subtree root at the group's top level — contiguously, buckets in
// breadth-first order inside a segment, the bucket's Z records
// contiguous. Segments exactly partition the buckets, so the total
// slot count (and therefore the physical footprint) matches the flat
// layout; only the slot permutation and the transfer granularity
// change.
//
// valid_bit_tree tracks, in trusted memory, which buckets have ever
// been written since the last reset (one bit per bucket). A segment
// none of whose buckets is valid is known to hold only dummy records,
// so its device read — and the bulk writes of initialization and reset
// — can be skipped entirely. Occupancy is data-independent by
// construction: bits are set by path write-backs, whose leaves are
// uniform draws regardless of which block ids the workload touches.
#ifndef HORAM_STORAGE_PAGE_LAYOUT_H
#define HORAM_STORAGE_PAGE_LAYOUT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace horam::storage {

/// Device-side layouts of a tree-resident storage lane.
enum class storage_layout : std::uint8_t {
  /// One range operation per bucket, buckets in heap order — the
  /// historical layout; bit-for-bit the pre-page machine.
  flat,
  /// Buckets packed into page-sized subtree segments; one operation per
  /// contiguous path segment, with valid-bit skipping of never-written
  /// segments.
  page,
};

/// Static geometry of a page layout.
struct page_layout_config {
  /// Total tree levels (root = level 0).
  std::uint32_t total_levels = 0;
  /// First storage-resident level; levels above it are in memory.
  std::uint32_t first_level = 0;
  /// Records per bucket (Path ORAM's Z). Any positive value — the
  /// layout does not require a power of two.
  std::uint32_t bucket_size = 0;
  /// Bytes the modelled hardware moves per record (timing size).
  std::uint64_t logical_block_bytes = 0;
  /// Target device page size; determines the group height.
  std::uint64_t page_bytes = 0;
};

/// One segment: a depth-`group_height(group)` subtree stored
/// contiguously. `index` is the subtree root's position within the
/// group's top level.
struct segment_ref {
  std::uint32_t group = 0;
  std::uint64_t index = 0;
};

/// Pure addressing math: bucket (level, position) <-> store slot, path
/// leaf -> touched segments. Unit-testable without devices.
class page_layout {
 public:
  explicit page_layout(const page_layout_config& config);

  [[nodiscard]] const page_layout_config& config() const noexcept {
    return config_;
  }
  /// Levels covered by a full group (h above).
  [[nodiscard]] std::uint32_t group_levels() const noexcept {
    return group_levels_;
  }
  [[nodiscard]] std::uint32_t group_count() const noexcept {
    return group_count_;
  }
  /// Levels covered by `group` (the last group may be truncated).
  [[nodiscard]] std::uint32_t group_height(std::uint32_t group) const;
  /// Global tree level of the group's subtree roots.
  [[nodiscard]] std::uint32_t group_top_level(std::uint32_t group) const;
  /// Segments in `group` (one per subtree root at its top level).
  [[nodiscard]] std::uint64_t segment_count(std::uint32_t group) const;
  /// Buckets per segment of `group`: 2^height - 1 (partial pages when
  /// the group is truncated).
  [[nodiscard]] std::uint64_t segment_buckets(std::uint32_t group) const;
  /// Record slots per segment of `group`.
  [[nodiscard]] std::uint64_t segment_records(std::uint32_t group) const;
  /// Total record slots over all groups; equals the flat layout's
  /// storage-resident slot count (segments partition the buckets).
  [[nodiscard]] std::uint64_t total_slots() const noexcept {
    return group_slot_base_.back();
  }

  /// Segment holding the bucket at (level, position-in-level).
  [[nodiscard]] segment_ref segment_of(std::uint32_t level,
                                       std::uint64_t position) const;
  /// Segment a path to `leaf` touches in `group`.
  [[nodiscard]] segment_ref path_segment(std::uint32_t group,
                                         std::uint64_t leaf) const;
  /// First record slot of `segment`.
  [[nodiscard]] std::uint64_t segment_first_slot(segment_ref segment) const;
  /// Bucket ordinal within its segment, breadth-first from the root.
  [[nodiscard]] std::uint64_t bucket_index_in_segment(
      std::uint32_t level, std::uint64_t position) const;
  /// First record slot of the bucket at (level, position-in-level).
  [[nodiscard]] std::uint64_t bucket_first_slot(std::uint32_t level,
                                                std::uint64_t position) const;

 private:
  page_layout_config config_;
  std::uint32_t group_levels_ = 1;
  std::uint32_t group_count_ = 0;
  /// group_slot_base_[g] = first slot of group g; back() = total slots.
  std::vector<std::uint64_t> group_slot_base_;
};

/// Trusted-memory bitmap over the storage-resident buckets: bit set =
/// the bucket has been written since the last clear(), so its device
/// copy may differ from the all-dummy initial state. Indexed by the
/// lane-local bucket ordinal (heap index minus the in-memory prefix).
class valid_bit_tree {
 public:
  explicit valid_bit_tree(std::uint64_t bucket_count);

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool test(std::uint64_t bucket) const;
  void set(std::uint64_t bucket);
  /// Resets every bit (tree reinitialised to all-dummy).
  void clear();
  /// Buckets currently marked valid (occupancy; audits assert this is
  /// workload-independent).
  [[nodiscard]] std::uint64_t valid_count() const noexcept {
    return valid_count_;
  }
  /// Trusted-memory footprint of the bitmap.
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return bits_.size() * sizeof(std::uint64_t);
  }

 private:
  std::uint64_t size_ = 0;
  std::uint64_t valid_count_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace horam::storage

#endif  // HORAM_STORAGE_PAGE_LAYOUT_H
