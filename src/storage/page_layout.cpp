#include "storage/page_layout.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::storage {

page_layout::page_layout(const page_layout_config& config) : config_(config) {
  expects(config_.total_levels > 0, "page_layout: total_levels must be > 0");
  expects(config_.first_level < config_.total_levels,
          "page_layout: first_level must leave at least one storage level");
  expects(config_.bucket_size > 0, "page_layout: bucket_size must be > 0");
  expects(config_.logical_block_bytes > 0,
          "page_layout: logical_block_bytes must be > 0");
  expects(config_.page_bytes > 0, "page_layout: page_bytes must be > 0");

  const std::uint64_t bucket_bytes =
      static_cast<std::uint64_t>(config_.bucket_size) *
      config_.logical_block_bytes;
  const std::uint64_t buckets_per_page = config_.page_bytes / bucket_bytes;
  // A depth-h subtree holds 2^h - 1 buckets; pick the deepest subtree
  // that still fits one page, never less than a single bucket.
  group_levels_ =
      buckets_per_page > 0 ? util::floor_log2(buckets_per_page + 1) : 1;
  if (group_levels_ == 0) {
    group_levels_ = 1;
  }
  const std::uint32_t io_levels = config_.total_levels - config_.first_level;
  if (group_levels_ > io_levels) {
    group_levels_ = io_levels;
  }
  group_count_ = (io_levels + group_levels_ - 1) / group_levels_;

  group_slot_base_.reserve(group_count_ + 1);
  group_slot_base_.push_back(0);
  for (std::uint32_t g = 0; g < group_count_; ++g) {
    group_slot_base_.push_back(group_slot_base_.back() +
                               segment_count(g) * segment_records(g));
  }
}

std::uint32_t page_layout::group_height(std::uint32_t group) const {
  expects(group < group_count_, "page_layout: group out of range");
  const std::uint32_t io_levels = config_.total_levels - config_.first_level;
  const std::uint32_t covered = group * group_levels_;
  const std::uint32_t remaining = io_levels - covered;
  return remaining < group_levels_ ? remaining : group_levels_;
}

std::uint32_t page_layout::group_top_level(std::uint32_t group) const {
  expects(group < group_count_, "page_layout: group out of range");
  return config_.first_level + group * group_levels_;
}

std::uint64_t page_layout::segment_count(std::uint32_t group) const {
  return std::uint64_t{1} << group_top_level(group);
}

std::uint64_t page_layout::segment_buckets(std::uint32_t group) const {
  return (std::uint64_t{1} << group_height(group)) - 1;
}

std::uint64_t page_layout::segment_records(std::uint32_t group) const {
  return segment_buckets(group) * config_.bucket_size;
}

segment_ref page_layout::segment_of(std::uint32_t level,
                                    std::uint64_t position) const {
  expects(level >= config_.first_level && level < config_.total_levels,
          "page_layout: level not storage-resident");
  expects(position < (std::uint64_t{1} << level),
          "page_layout: position out of range for level");
  const std::uint32_t depth = level - config_.first_level;
  segment_ref segment;
  segment.group = depth / group_levels_;
  segment.index = position >> (depth - segment.group * group_levels_);
  return segment;
}

segment_ref page_layout::path_segment(std::uint32_t group,
                                      std::uint64_t leaf) const {
  const std::uint32_t leaf_level = config_.total_levels - 1;
  expects(leaf < (std::uint64_t{1} << leaf_level),
          "page_layout: leaf out of range");
  segment_ref segment;
  segment.group = group;
  segment.index = leaf >> (leaf_level - group_top_level(group));
  return segment;
}

std::uint64_t page_layout::segment_first_slot(segment_ref segment) const {
  expects(segment.index < segment_count(segment.group),
          "page_layout: segment index out of range");
  return group_slot_base_[segment.group] +
         segment.index * segment_records(segment.group);
}

std::uint64_t page_layout::bucket_index_in_segment(
    std::uint32_t level, std::uint64_t position) const {
  const std::uint32_t depth = level - config_.first_level;
  const std::uint32_t local = depth % group_levels_;
  // Breadth-first within the segment's subtree: the 2^local buckets of
  // local depth `local` follow the 2^local - 1 shallower ones.
  return ((std::uint64_t{1} << local) - 1) +
         (position & ((std::uint64_t{1} << local) - 1));
}

std::uint64_t page_layout::bucket_first_slot(std::uint32_t level,
                                             std::uint64_t position) const {
  const segment_ref segment = segment_of(level, position);
  return segment_first_slot(segment) +
         bucket_index_in_segment(level, position) * config_.bucket_size;
}

valid_bit_tree::valid_bit_tree(std::uint64_t bucket_count)
    : size_(bucket_count), bits_((bucket_count + 63) / 64, 0) {}

bool valid_bit_tree::test(std::uint64_t bucket) const {
  expects(bucket < size_, "valid_bit_tree: bucket out of range");
  return (bits_[bucket >> 6] >> (bucket & 63)) & 1;
}

void valid_bit_tree::set(std::uint64_t bucket) {
  expects(bucket < size_, "valid_bit_tree: bucket out of range");
  std::uint64_t& word = bits_[bucket >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (bucket & 63);
  if (!(word & mask)) {
    word |= mask;
    ++valid_count_;
  }
}

void valid_bit_tree::clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  valid_count_ = 0;
}

}  // namespace horam::storage
