#include "storage/partitioned_store.h"

#include "util/contracts.h"

namespace horam::storage {

partitioned_store::partitioned_store(sim::block_device& device,
                                     std::uint64_t base_offset,
                                     partition_geometry geometry,
                                     std::size_t record_bytes,
                                     std::uint64_t logical_block_bytes)
    : geometry_(geometry),
      store_(device, base_offset, geometry.total_slots(), record_bytes,
             logical_block_bytes),
      append_counts_(geometry.partition_count, 0) {
  expects(geometry.partition_count > 0, "need at least one partition");
  expects(geometry.main_capacity > 0, "partitions need capacity");
}

sim::sim_time partitioned_store::read_slot(std::uint64_t partition,
                                           std::uint64_t index,
                                           std::span<std::uint8_t> out) {
  expects(partition < geometry_.partition_count, "partition out of range");
  expects(index < geometry_.main_capacity, "slot index out of range");
  return store_.read(main_base(partition) + index, out);
}

sim::sim_time partitioned_store::write_slot(
    std::uint64_t partition, std::uint64_t index,
    std::span<const std::uint8_t> in) {
  expects(partition < geometry_.partition_count, "partition out of range");
  expects(index < geometry_.main_capacity, "slot index out of range");
  return store_.write(main_base(partition) + index, in);
}

sim::sim_time partitioned_store::read_append_slot(
    std::uint64_t partition, std::uint64_t index,
    std::span<std::uint8_t> out) {
  expects(partition < geometry_.partition_count, "partition out of range");
  expects(index < append_counts_[partition],
          "append slot index beyond used region");
  return store_.read(append_base(partition) + index, out);
}

sim::sim_time partitioned_store::append(
    std::uint64_t partition, std::span<const std::uint8_t> records) {
  expects(partition < geometry_.partition_count, "partition out of range");
  const std::size_t record_size = store_.record_bytes();
  expects(records.size() % record_size == 0,
          "append size must be a whole number of records");
  const std::uint64_t count = records.size() / record_size;
  expects(append_counts_[partition] + count <= geometry_.append_capacity,
          "append region overflow");
  const sim::sim_time cost = store_.write_range(
      append_base(partition) + append_counts_[partition], count, records);
  append_counts_[partition] += count;
  return cost;
}

std::uint64_t partitioned_store::appended_count(
    std::uint64_t partition) const {
  expects(partition < geometry_.partition_count, "partition out of range");
  return append_counts_[partition];
}

sim::sim_time partitioned_store::read_partition(
    std::uint64_t partition, bool include_appends,
    std::vector<std::uint8_t>& out, std::uint64_t& records_read) {
  expects(partition < geometry_.partition_count, "partition out of range");
  const std::uint64_t count =
      geometry_.main_capacity +
      (include_appends ? append_counts_[partition] : 0);
  out.resize(count * store_.record_bytes());
  records_read = count;
  return store_.read_range(main_base(partition), count, out);
}

sim::sim_time partitioned_store::write_partition(
    std::uint64_t partition, std::span<const std::uint8_t> records) {
  expects(partition < geometry_.partition_count, "partition out of range");
  expects(records.size() ==
              geometry_.main_capacity * store_.record_bytes(),
          "partition write must cover the whole main region");
  const sim::sim_time cost = store_.write_range(
      main_base(partition), geometry_.main_capacity, records);
  append_counts_[partition] = 0;
  return cost;
}

std::span<const std::uint8_t> partitioned_store::peek_slot(
    std::uint64_t partition, std::uint64_t index) const {
  expects(partition < geometry_.partition_count, "partition out of range");
  expects(index < geometry_.main_capacity, "slot index out of range");
  return store_.peek(main_base(partition) + index);
}

}  // namespace horam::storage
