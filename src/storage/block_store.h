// Fixed-record block store over a simulated device.
//
// The store owns the record bytes (host memory) and charges virtual time
// to its block_device for every access. Records are opaque byte strings
// of a fixed size — the ORAM layers decide what goes inside (sealed
// blocks). Two sizes are distinguished:
//   * record_bytes        — bytes actually held per slot (host memory)
//   * logical_block_bytes — bytes the modelled hardware moves per slot
// They are equal in a deployment; benchmarks shrink record_bytes to keep
// host memory small while timing full-size blocks.
#ifndef HORAM_STORAGE_BLOCK_STORE_H
#define HORAM_STORAGE_BLOCK_STORE_H

#include <cstdint>
#include <span>
#include <vector>

#include "sim/device.h"

namespace horam::storage {

/// A contiguous array of `slot_count` fixed-size records on a device.
class block_store {
 public:
  /// Creates the store. `base_offset` positions it on the device (so
  /// several stores can share one device, e.g. tree + flat regions).
  block_store(sim::block_device& device, std::uint64_t base_offset,
              std::uint64_t slot_count, std::size_t record_bytes,
              std::uint64_t logical_block_bytes);

  [[nodiscard]] std::uint64_t slot_count() const noexcept {
    return slot_count_;
  }
  [[nodiscard]] std::size_t record_bytes() const noexcept {
    return record_bytes_;
  }
  [[nodiscard]] std::uint64_t logical_block_bytes() const noexcept {
    return logical_block_bytes_;
  }
  [[nodiscard]] sim::block_device& device() noexcept { return device_; }

  /// Reads one record into `out` (record_bytes long); returns device cost.
  sim::sim_time read(std::uint64_t slot, std::span<std::uint8_t> out);

  /// Writes one record from `in`; returns device cost.
  sim::sim_time write(std::uint64_t slot, std::span<const std::uint8_t> in);

  /// Reads `count` consecutive records starting at `first` as one
  /// streaming transfer into `out` (count * record_bytes long).
  sim::sim_time read_range(std::uint64_t first, std::uint64_t count,
                           std::span<std::uint8_t> out);

  /// Writes `count` consecutive records as one streaming transfer.
  sim::sim_time write_range(std::uint64_t first, std::uint64_t count,
                            std::span<const std::uint8_t> in);

  /// XOR-combined read (Ring ORAM's XOR technique): the storage side
  /// folds the listed slots together and a single combined block — the
  /// byte-wise XOR of their records — crosses the bus into `out`
  /// (record_bytes long). Charges one device read of one logical block
  /// regardless of how many slots are folded; the caller recovers the
  /// one real record by XORing out the deterministic dummy encodings.
  sim::sim_time read_xor(std::span<const std::uint64_t> slots,
                         std::span<std::uint8_t> out);

  /// Batched scatter read (the hier backend's one-round-trip probe):
  /// the storage side gathers the listed slots — one per level, known up
  /// front from the trusted index, no element depending on another's
  /// result — and ships them back in a single exchange. Each record
  /// lands at `out[i * record_bytes]`; charges one device read moving
  /// slots.size() logical blocks (one command, k blocks of payload,
  /// one round trip).
  sim::sim_time read_scatter(std::span<const std::uint64_t> slots,
                             std::span<std::uint8_t> out);

  /// Direct read-only view of a stored record (no device time charged;
  /// for tests and integrity checks only).
  [[nodiscard]] std::span<const std::uint8_t> peek(std::uint64_t slot) const;

  /// Installs a record's host bytes without touching the device (no
  /// device time, no op counted). For state the device never has to
  /// materialise — e.g. the all-dummy image behind unset valid bits,
  /// which page-layout reads reconstruct from trusted knowledge instead
  /// of a transfer.
  void prime(std::uint64_t slot, std::span<const std::uint8_t> in);

  /// Fault injection: XORs `mask` into one stored byte, bypassing the
  /// device (models an adversary or bit rot). Test use only.
  void corrupt(std::uint64_t slot, std::size_t byte_offset,
               std::uint8_t mask);

 private:
  [[nodiscard]] std::uint64_t device_offset(std::uint64_t slot) const
      noexcept {
    return base_offset_ + slot * logical_block_bytes_;
  }

  sim::block_device& device_;
  std::uint64_t base_offset_;
  std::uint64_t slot_count_;
  std::size_t record_bytes_;
  std::uint64_t logical_block_bytes_;
  std::vector<std::uint8_t> data_;
};

}  // namespace horam::storage

#endif  // HORAM_STORAGE_BLOCK_STORE_H
