#include "storage/block_store.h"

#include <cstring>

#include "util/contracts.h"

namespace horam::storage {

block_store::block_store(sim::block_device& device,
                         std::uint64_t base_offset, std::uint64_t slot_count,
                         std::size_t record_bytes,
                         std::uint64_t logical_block_bytes)
    : device_(device),
      base_offset_(base_offset),
      slot_count_(slot_count),
      record_bytes_(record_bytes),
      logical_block_bytes_(logical_block_bytes) {
  expects(slot_count > 0, "store needs at least one slot");
  expects(record_bytes > 0, "records must be non-empty");
  expects(logical_block_bytes >= record_bytes,
          "logical block must hold the record");
  data_.resize(slot_count * record_bytes);
}

sim::sim_time block_store::read(std::uint64_t slot,
                                std::span<std::uint8_t> out) {
  expects(slot < slot_count_, "slot out of range");
  expects(out.size() >= record_bytes_, "output buffer too small");
  std::memcpy(out.data(), data_.data() + slot * record_bytes_,
              record_bytes_);
  return device_.read(device_offset(slot), logical_block_bytes_);
}

sim::sim_time block_store::write(std::uint64_t slot,
                                 std::span<const std::uint8_t> in) {
  expects(slot < slot_count_, "slot out of range");
  expects(in.size() >= record_bytes_, "input buffer too small");
  std::memcpy(data_.data() + slot * record_bytes_, in.data(), record_bytes_);
  return device_.write(device_offset(slot), logical_block_bytes_);
}

sim::sim_time block_store::read_range(std::uint64_t first,
                                      std::uint64_t count,
                                      std::span<std::uint8_t> out) {
  expects(first + count <= slot_count_, "range out of bounds");
  expects(count > 0, "empty range read");
  expects(out.size() >= count * record_bytes_, "output buffer too small");
  std::memcpy(out.data(), data_.data() + first * record_bytes_,
              count * record_bytes_);
  return device_.read(device_offset(first), count * logical_block_bytes_);
}

sim::sim_time block_store::write_range(std::uint64_t first,
                                       std::uint64_t count,
                                       std::span<const std::uint8_t> in) {
  expects(first + count <= slot_count_, "range out of bounds");
  expects(count > 0, "empty range write");
  expects(in.size() >= count * record_bytes_, "input buffer too small");
  std::memcpy(data_.data() + first * record_bytes_, in.data(),
              count * record_bytes_);
  return device_.write(device_offset(first), count * logical_block_bytes_);
}

sim::sim_time block_store::read_xor(std::span<const std::uint64_t> slots,
                                    std::span<std::uint8_t> out) {
  expects(!slots.empty(), "XOR read needs at least one slot");
  expects(out.size() >= record_bytes_, "output buffer too small");
  std::memset(out.data(), 0, record_bytes_);
  for (const std::uint64_t slot : slots) {
    expects(slot < slot_count_, "slot out of range");
    const std::uint8_t* src = data_.data() + slot * record_bytes_;
    for (std::size_t i = 0; i < record_bytes_; ++i) out[i] ^= src[i];
  }
  return device_.read(device_offset(slots.front()), logical_block_bytes_);
}

sim::sim_time block_store::read_scatter(
    std::span<const std::uint64_t> slots, std::span<std::uint8_t> out) {
  expects(!slots.empty(), "scatter read needs at least one slot");
  expects(out.size() >= slots.size() * record_bytes_,
          "output buffer too small");
  for (std::size_t i = 0; i < slots.size(); ++i) {
    expects(slots[i] < slot_count_, "slot out of range");
    std::memcpy(out.data() + i * record_bytes_,
                data_.data() + slots[i] * record_bytes_, record_bytes_);
  }
  return device_.read(device_offset(slots.front()),
                      slots.size() * logical_block_bytes_);
}

std::span<const std::uint8_t> block_store::peek(std::uint64_t slot) const {
  expects(slot < slot_count_, "slot out of range");
  return {data_.data() + slot * record_bytes_, record_bytes_};
}

void block_store::prime(std::uint64_t slot,
                        std::span<const std::uint8_t> in) {
  expects(slot < slot_count_, "slot out of range");
  expects(in.size() >= record_bytes_, "input buffer too small");
  std::memcpy(data_.data() + slot * record_bytes_, in.data(), record_bytes_);
}

void block_store::corrupt(std::uint64_t slot, std::size_t byte_offset,
                          std::uint8_t mask) {
  expects(slot < slot_count_, "slot out of range");
  expects(byte_offset < record_bytes_, "byte offset out of range");
  data_[slot * record_bytes_ + byte_offset] ^= mask;
}

}  // namespace horam::storage
