// Partitioned block store: the storage-layer layout used by H-ORAM's
// group-and-partition shuffle and by the partition-ORAM baseline.
//
// The store is divided into `partition_count` partitions. Each partition
// owns a fixed main region of `main_capacity` slots plus an append region
// of `append_capacity` slots ("the evicted data keep concatenating on the
// top of each partition", §5.3.1). Main + append regions of one partition
// are physically contiguous, so a whole partition — including its pending
// appends — can be shuffled with one streaming read and one streaming
// write.
#ifndef HORAM_STORAGE_PARTITIONED_STORE_H
#define HORAM_STORAGE_PARTITIONED_STORE_H

#include <cstdint>
#include <span>
#include <vector>

#include "storage/block_store.h"

namespace horam::storage {

/// Geometry of a partitioned store.
struct partition_geometry {
  std::uint64_t partition_count = 0;
  std::uint64_t main_capacity = 0;
  std::uint64_t append_capacity = 0;

  [[nodiscard]] std::uint64_t slots_per_partition() const noexcept {
    return main_capacity + append_capacity;
  }
  [[nodiscard]] std::uint64_t total_slots() const noexcept {
    return partition_count * slots_per_partition();
  }
};

/// Fixed-size records organised into partitions with append extents.
class partitioned_store {
 public:
  partitioned_store(sim::block_device& device, std::uint64_t base_offset,
                    partition_geometry geometry, std::size_t record_bytes,
                    std::uint64_t logical_block_bytes);

  [[nodiscard]] const partition_geometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] std::size_t record_bytes() const noexcept {
    return store_.record_bytes();
  }

  /// Random access to one slot of a partition's main region.
  sim::sim_time read_slot(std::uint64_t partition, std::uint64_t index,
                          std::span<std::uint8_t> out);
  sim::sim_time write_slot(std::uint64_t partition, std::uint64_t index,
                           std::span<const std::uint8_t> in);

  /// Random access to one slot of a partition's append region
  /// (index < appended_count(partition)).
  sim::sim_time read_append_slot(std::uint64_t partition, std::uint64_t index,
                                 std::span<std::uint8_t> out);

  /// Appends `records` (a multiple of record_bytes) to the partition's
  /// append region as one sequential write. Throws if the region is full.
  sim::sim_time append(std::uint64_t partition,
                       std::span<const std::uint8_t> records);

  /// Number of records currently in a partition's append region.
  [[nodiscard]] std::uint64_t appended_count(std::uint64_t partition) const;

  /// Streaming read of a partition's main region and, optionally, its
  /// used append region, into `out`. Returns the device cost; sets
  /// `records_read` to the number of records delivered.
  sim::sim_time read_partition(std::uint64_t partition, bool include_appends,
                               std::vector<std::uint8_t>& out,
                               std::uint64_t& records_read);

  /// Streaming write of a full main region (main_capacity records) and
  /// reset of the partition's append region.
  sim::sim_time write_partition(std::uint64_t partition,
                                std::span<const std::uint8_t> records);

  /// Test-only view of one main-region record (no time charged).
  [[nodiscard]] std::span<const std::uint8_t> peek_slot(
      std::uint64_t partition, std::uint64_t index) const;

 private:
  [[nodiscard]] std::uint64_t main_base(std::uint64_t partition) const
      noexcept {
    return partition * geometry_.slots_per_partition();
  }
  [[nodiscard]] std::uint64_t append_base(std::uint64_t partition) const
      noexcept {
    return main_base(partition) + geometry_.main_capacity;
  }

  partition_geometry geometry_;
  block_store store_;
  std::vector<std::uint64_t> append_counts_;
};

}  // namespace horam::storage

#endif  // HORAM_STORAGE_PARTITIONED_STORE_H
