// Oblivious request coalescing: a round-scoped, trusted-memory dedup /
// fan-out table over the engine's padded rounds.
//
// At millions-of-users scale the request stream is heavily skewed, so
// many concurrent logical requests hit the same hot blocks — and each
// one would pay a full physical ORAM access. The round_table merges the
// same-block requests of one engine round (across sessions and tenants)
// into a single physical access per block and remembers how to fan the
// result back out to every waiting completion:
//
//   - read + read            → one access; both readers get its payload
//   - read after write       → the read is served from the write's data
//                              captured at table-build time (forwarding)
//   - write after write      → last writer (in scheduler pop order) wins;
//                              one combined physical write
//   - read(s) before a write → the physical access becomes a
//                              fetch-before-write (read-modify-write):
//                              one access returns the pre-write payload
//                              for the early readers AND applies the
//                              final write
//
// Semantics are exactly those of executing the round's members serially
// in scheduler order — the table only removes redundant device work.
//
// Privacy: the table lives in trusted memory and never touches the bus.
// Coalescing only changes how many *real* slots a round consumes; the
// engine tops every shard up to its public round_cap() with dummies
// either way, so the per-shard bus shape is unchanged by construction
// (the KS/chi-square audits in tests/coalesce_test.cpp assert it).
//
// Capacity discipline: admits() implements *prefix* coalescing — the
// round consumes the longest prefix of a shard's queue whose distinct
// block count fits the round cap, and stops at the first entry that
// would open one group too many. Skipping past it to merge later
// same-block entries would complete a later request ahead of an earlier
// one from the same tenant; the prefix rule keeps per-tenant completion
// order intact.
#ifndef HORAM_COALESCE_COALESCER_H
#define HORAM_COALESCE_COALESCER_H

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/controller.h"
#include "oram/common/types.h"
#include "sim/time.h"

namespace horam::coalesce {

/// How one logical member of a group receives its completion.
enum class member_source : std::uint8_t {
  /// Takes the physical access's result (reads merged into the access,
  /// including readers a later write promoted to fetch-before-write).
  physical,
  /// Read admitted after a write in the same group: served from that
  /// write's payload, captured into forward_data at table-build time.
  forwarded,
  /// A write whose data was combined into the physical request (it may
  /// have been overwritten by a later one); returns no payload.
  write,
};

/// One logical request riding a group, identified by the caller's tag
/// (the engine's submit token).
struct member {
  std::uint64_t tag = 0;
  member_source source = member_source::physical;
  /// Latest group index in the table when this member was admitted.
  /// Group completion times are monotone in group index (batch order),
  /// so a merged member completes at group_times[order_hint] — the
  /// round's frontier at its pop moment — which keeps per-shard
  /// completion times monotone in scheduler pop order (per-tenant FIFO)
  /// even when the member merged into an *earlier* group.
  std::size_t order_hint = 0;
  /// Payload a forwarded read returns (padded to the block payload size
  /// at fan-out).
  std::vector<std::uint8_t> forward_data;
};

/// One coalescing group: the single physical request the round executes
/// for a block, plus every logical member it retires, in scheduler pop
/// order.
struct group {
  request physical;
  std::vector<member> members;
};

/// The per-round coalescing table. Built by the engine coordinator
/// before lane fan-out (so nothing here is ever shared across threads),
/// consumed via take().
class round_table {
 public:
  /// `capacity` bounds the number of distinct blocks (= physical
  /// accesses = groups) the table admits; 0 = unbounded (the open-loop
  /// batch path, which sizes its own padding afterwards).
  explicit round_table(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Whether add() would accept a request for `id` — always true for a
  /// block that already has a group (merging consumes no new slot), and
  /// true for a fresh block while groups() < capacity.
  [[nodiscard]] bool admits(oram::block_id id) const {
    return capacity_ == 0 || groups_.size() < capacity_ ||
           index_.contains(id);
  }

  /// Admits one request in scheduler pop order. Requires admits(req.id).
  void add(std::uint64_t tag, request&& req);

  /// Physical accesses this round will issue (distinct blocks).
  [[nodiscard]] std::size_t groups() const noexcept {
    return groups_.size();
  }
  /// Logical requests admitted.
  [[nodiscard]] std::size_t members() const noexcept { return members_; }
  /// Logical requests absorbed without a physical access of their own.
  [[nodiscard]] std::size_t merged() const noexcept {
    return members_ - groups_.size();
  }

  /// Surrenders the groups in first-appearance (= physical batch)
  /// order; the table is empty afterwards.
  [[nodiscard]] std::vector<group> take();

 private:
  std::size_t capacity_;
  /// Groups in first-appearance order (this is the batch order the
  /// physical requests execute in).
  std::vector<group> groups_;
  /// Block id -> index into groups_.
  std::unordered_map<oram::block_id, std::size_t> index_;
  std::size_t members_ = 0;
};

/// Fans one physical result out to every member of `g`, invoking
/// `deliver(tag, result)` once per member in scheduler pop order. The
/// first member (the one that opened the group) inherits the physical
/// completion_time and hit flag; absorbed members report hit = true —
/// they were served from the round table in trusted memory — and
/// complete at `group_times[order_hint]`, the round's frontier when
/// they were admitted (see member::order_hint). `group_times` holds the
/// round's per-group completion times, already mapped onto the global
/// clock; `payload_bytes` pads forwarded payloads to the block size,
/// matching what a physical read returns.
void fan_out(
    group&& g, request_result&& physical,
    std::span<const sim::sim_time> group_times, std::size_t payload_bytes,
    const std::function<void(std::uint64_t tag, request_result&&)>&
        deliver);

}  // namespace horam::coalesce

#endif  // HORAM_COALESCE_COALESCER_H
