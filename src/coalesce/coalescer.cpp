#include "coalesce/coalescer.h"

#include <utility>

#include "util/contracts.h"

namespace horam::coalesce {

void round_table::add(std::uint64_t tag, request&& req) {
  expects(admits(req.id), "round_table::add past capacity");
  ++members_;

  const auto it = index_.find(req.id);
  if (it == index_.end()) {
    // First touch of this block in the round: the request becomes the
    // group's physical access verbatim.
    member first;
    first.tag = tag;
    first.source = req.op == oram::op_kind::write ? member_source::write
                                                  : member_source::physical;
    group fresh;
    fresh.physical = std::move(req);
    fresh.members.push_back(std::move(first));
    index_.emplace(fresh.physical.id, groups_.size());
    groups_.push_back(std::move(fresh));
    return;
  }

  group& g = groups_[it->second];
  member entry;
  entry.tag = tag;
  entry.order_hint = groups_.size() - 1;  // the round's current frontier
  if (req.op == oram::op_kind::read) {
    if (g.physical.op == oram::op_kind::write) {
      // Read after write: serialized execution would return the latest
      // write's data, which is sitting in the combined physical request
      // right now — capture it (forwarding), no extra access.
      entry.source = member_source::forwarded;
      entry.forward_data = g.physical.write_data;
    } else {
      // Read-read merge: ride the shared physical read.
      entry.source = member_source::physical;
    }
  } else {
    entry.source = member_source::write;
    if (g.physical.op == oram::op_kind::read) {
      // A write joins a group of readers: the physical access becomes a
      // read-modify-write so the earlier readers still get the pre-write
      // payload from the same single access.
      g.physical.op = oram::op_kind::write;
      g.physical.fetch_before_write = true;
    }
    // Last-writer-wins (scheduler pop order) write combining.
    g.physical.write_data = std::move(req.write_data);
  }
  g.members.push_back(std::move(entry));
}

std::vector<group> round_table::take() {
  index_.clear();
  members_ = 0;
  return std::exchange(groups_, {});
}

void fan_out(
    group&& g, request_result&& physical,
    std::span<const sim::sim_time> group_times, std::size_t payload_bytes,
    const std::function<void(std::uint64_t tag, request_result&&)>&
        deliver) {
  invariant(!g.members.empty(), "fan_out of an empty group");
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    member& m = g.members[i];
    request_result out;
    if (i == 0) {
      out.completion_time = physical.completion_time;
    } else {
      invariant(m.order_hint < group_times.size(),
                "fan_out order hint out of range");
      out.completion_time = group_times[m.order_hint];
    }
    // The group's opener inherits the physical residency outcome;
    // absorbed members were served from the round table in trusted
    // memory — control-layer hits by construction.
    out.hit = i == 0 ? physical.hit : true;
    switch (m.source) {
      case member_source::physical:
        if (i + 1 == g.members.size()) {
          out.read_data = std::move(physical.read_data);
        } else {
          out.read_data = physical.read_data;
        }
        break;
      case member_source::forwarded:
        out.read_data = std::move(m.forward_data);
        out.read_data.resize(payload_bytes, 0);
        break;
      case member_source::write:
        break;  // writes return no payload
    }
    deliver(m.tag, std::move(out));
  }
}

}  // namespace horam::coalesce
