// Operation statistics collected by the simulated devices and caches.
#ifndef HORAM_SIM_STATS_H
#define HORAM_SIM_STATS_H

#include <cstdint>

#include "sim/time.h"

namespace horam::sim {

/// Counters accumulated by a block device. "Sequential" means the
/// operation started where the previous one ended (no repositioning).
struct io_stats {
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t sequential_read_ops = 0;
  std::uint64_t sequential_write_ops = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  sim_time busy_time = 0;

  [[nodiscard]] std::uint64_t total_ops() const noexcept {
    return read_ops + write_ops;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_read + bytes_written;
  }

  void reset() noexcept { *this = io_stats{}; }
};

/// Counters accumulated by the buffer cache.
struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  void reset() noexcept { *this = cache_stats{}; }
};

}  // namespace horam::sim

#endif  // HORAM_SIM_STATS_H
