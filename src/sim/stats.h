// Operation statistics collected by the simulated devices and caches,
// plus the streaming latency histogram the tail-latency accounting is
// built on.
#ifndef HORAM_SIM_STATS_H
#define HORAM_SIM_STATS_H

#include <array>
#include <bit>
#include <cstdint>

#include "sim/time.h"

namespace horam::sim {

/// Counters accumulated by a block device. "Sequential" means the
/// operation started where the previous one ended (no repositioning).
struct io_stats {
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t sequential_read_ops = 0;
  std::uint64_t sequential_write_ops = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Dependency-aware request/response exchanges with the device: an
  /// operation issued outside a trip scope counts one, a trip scope
  /// (block_device::begin_trip/end_trip) folds every operation it
  /// encloses into exactly one — so a batched scatter read is 1 trip
  /// while a k-level dependent map walk is k. The metric that dominates
  /// once per-operation latency (an NVMe queue, a network RTT), not
  /// bandwidth, is the bottleneck.
  std::uint64_t round_trips = 0;
  sim_time busy_time = 0;

  [[nodiscard]] std::uint64_t total_ops() const noexcept {
    return read_ops + write_ops;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_read + bytes_written;
  }

  void reset() noexcept { *this = io_stats{}; }
};

/// Counters accumulated by the buffer cache.
struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  void reset() noexcept { *this = cache_stats{}; }
};

/// Streaming log-bucketed latency histogram (HDR-style): values below
/// 16 ns are exact, larger ones land in one of 8 sub-buckets per
/// power-of-two octave (≤ 12.5% relative error). record() is O(1) and
/// allocation-free, histograms merge with operator+= (multi-shard
/// aggregation), and quantile() reports a conservative upper bound of
/// the bucket holding the requested sample — the shape the p50/p95/p99
/// tail-latency accounting needs.
class latency_histogram {
 public:
  static constexpr std::size_t kBucketCount = 8 + 61 * 8;

  void record(sim_time value) noexcept {
    const std::uint64_t v =
        value < 0 ? 0 : static_cast<std::uint64_t>(value);
    ++buckets_[bucket_of(v)];
    ++count_;
    max_ = value > max_ ? value : max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] sim_time max() const noexcept { return max_; }

  /// Inclusive quantile for q in (0, 1]: the upper bound of the bucket
  /// holding the ceil(q * count)-th smallest sample, clamped to max().
  /// 0 when the histogram is empty.
  [[nodiscard]] sim_time quantile(double q) const noexcept {
    if (count_ == 0) {
      return 0;
    }
    const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    auto target = static_cast<std::uint64_t>(
        clamped * static_cast<double>(count_) + 0.9999999);
    if (target == 0) {
      target = 1;
    }
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        const sim_time upper = bucket_upper(i);
        return upper < max_ ? upper : max_;
      }
    }
    return max_;
  }

  [[nodiscard]] sim_time p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] sim_time p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] sim_time p99() const noexcept { return quantile(0.99); }

  latency_histogram& operator+=(const latency_histogram& other) noexcept {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    max_ = other.max_ > max_ ? other.max_ : max_;
    return *this;
  }

  void reset() noexcept { *this = latency_histogram{}; }

 private:
  /// Buckets: [0, 16) exact, then (octave, sub-bucket) pairs where the
  /// sub-bucket is the 3 bits after the leading one.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < 16) {
      return static_cast<std::size_t>(v);
    }
    const int msb = 63 - std::countl_zero(v);
    const std::uint64_t sub = (v >> (msb - 3)) & 7;
    return 8 + static_cast<std::size_t>(msb - 3) * 8 +
           static_cast<std::size_t>(sub);
  }

  /// Largest value the bucket covers (its inclusive upper edge).
  [[nodiscard]] static sim_time bucket_upper(std::size_t index) noexcept {
    if (index < 16) {
      return static_cast<sim_time>(index);
    }
    const std::uint64_t msb = (index - 8) / 8 + 3;
    const std::uint64_t sub = (index - 8) % 8;
    return static_cast<sim_time>(((8 + sub + 1) << (msb - 3)) - 1);
  }

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  sim_time max_ = 0;
};

}  // namespace horam::sim

#endif  // HORAM_SIM_STATS_H
