#include "sim/device.h"

#include "util/contracts.h"

namespace horam::sim {

block_device::block_device(device_profile profile)
    : profile_(std::move(profile)) {
  expects(profile_.read_bytes_per_second > 0.0,
          "device needs positive read throughput");
  expects(profile_.write_bytes_per_second > 0.0,
          "device needs positive write throughput");
  expects(profile_.seek_time >= 0 && profile_.per_op_time >= 0,
          "device times must be non-negative");
}

sim_time block_device::transfer_time(std::uint64_t size,
                                     double bytes_per_second) const {
  return static_cast<sim_time>(static_cast<double>(size) * 1e9 /
                               bytes_per_second);
}

sim_time block_device::read(std::uint64_t offset, std::uint64_t size) {
  const bool sequential = head_valid_ && offset == head_position_;
  sim_time cost = profile_.per_op_time +
                  transfer_time(size, profile_.read_bytes_per_second);
  if (!sequential) {
    cost += profile_.seek_time;
  }
  head_position_ = offset + size;
  head_valid_ = true;

  ++stats_.read_ops;
  count_trip();
  if (sequential) {
    ++stats_.sequential_read_ops;
  }
  stats_.bytes_read += size;
  stats_.busy_time += cost;
  return cost;
}

sim_time block_device::write(std::uint64_t offset, std::uint64_t size) {
  const bool sequential = head_valid_ && offset == head_position_;
  sim_time cost = profile_.per_op_time +
                  transfer_time(size, profile_.write_bytes_per_second);
  if (!sequential) {
    cost += profile_.seek_time;
  }
  head_position_ = offset + size;
  head_valid_ = true;

  ++stats_.write_ops;
  count_trip();
  if (sequential) {
    ++stats_.sequential_write_ops;
  }
  stats_.bytes_written += size;
  stats_.busy_time += cost;
  return cost;
}

}  // namespace horam::sim
