// LRU write-back buffer cache over a block device (an OS page-cache
// model). A timing layer only: it tracks which pages would be resident
// and charges either the hit cost or the underlying device cost.
//
// This substrate explains the thesis's measured numbers (its "HDD"
// latencies are page-cache-assisted) and feeds the device-sensitivity
// ablation; the headline reproductions use the pre-calibrated
// `hdd_paper()` profile directly.
#ifndef HORAM_SIM_BUFFER_CACHE_H
#define HORAM_SIM_BUFFER_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/device.h"
#include "sim/stats.h"

namespace horam::sim {

/// Configuration of the cache layer.
struct buffer_cache_config {
  std::uint64_t page_size = 4096;
  std::uint64_t capacity_pages = 4096;
  /// Cost of serving one page from the cache (memcpy + lookup).
  sim_time hit_time = 1000;  // 1 us
};

/// Write-back LRU page cache in front of a block_device.
class buffer_cache {
 public:
  buffer_cache(block_device& device, buffer_cache_config config);

  /// Cost of reading `size` bytes at `offset` through the cache.
  sim_time read(std::uint64_t offset, std::uint64_t size);

  /// Cost of writing `size` bytes at `offset` through the cache
  /// (write-back: dirty pages go to the device only on eviction/flush).
  sim_time write(std::uint64_t offset, std::uint64_t size);

  /// Writes every dirty page back to the device; returns the cost.
  sim_time flush();

  /// Drops all pages (flushing dirty ones first); returns the cost.
  sim_time invalidate();

  [[nodiscard]] const cache_stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  [[nodiscard]] std::uint64_t resident_pages() const noexcept {
    return lru_.size();
  }

 private:
  struct page_state {
    std::list<std::uint64_t>::iterator lru_position;
    bool dirty = false;
  };

  /// Ensures `page` is resident; returns the cost of any fill/eviction.
  sim_time touch(std::uint64_t page, bool mark_dirty, bool fill_from_device);
  sim_time evict_one();

  block_device& device_;
  buffer_cache_config config_;
  // Most-recently-used page at the front.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, page_state> pages_;
  cache_stats stats_;
};

}  // namespace horam::sim

#endif  // HORAM_SIM_BUFFER_CACHE_H
