// Control-layer CPU cost model: sealing/unsealing blocks and in-memory
// shuffle work. Charged by the ORAM layers on the same virtual timeline
// as the devices.
#ifndef HORAM_SIM_CPU_MODEL_H
#define HORAM_SIM_CPU_MODEL_H

#include <cstdint>
#include <string>

#include "sim/time.h"
#include "util/contracts.h"

namespace horam::sim {

/// Timing parameters of the trusted controller's CPU.
struct cpu_profile {
  std::string name;
  /// Bulk (de/en)cryption throughput.
  double crypto_bytes_per_second = 0.0;
  /// Fixed per-block bookkeeping (position-map lookup, stash ops).
  sim_time per_block_time = 0;
  /// Simple word operations per second (permutation bookkeeping).
  double word_ops_per_second = 0.0;
};

/// Computes virtual-time costs for control-layer work.
class cpu_model {
 public:
  explicit cpu_model(cpu_profile profile) : profile_(std::move(profile)) {
    expects(profile_.crypto_bytes_per_second > 0.0,
            "cpu needs positive crypto throughput");
    expects(profile_.word_ops_per_second > 0.0,
            "cpu needs positive op throughput");
  }

  /// Cost of sealing or opening `count` blocks of `bytes_each` bytes.
  [[nodiscard]] sim_time crypto_time(std::uint64_t count,
                                     std::uint64_t bytes_each) const {
    const double bulk = static_cast<double>(count * bytes_each) * 1e9 /
                        profile_.crypto_bytes_per_second;
    return static_cast<sim_time>(bulk) +
           static_cast<sim_time>(count) * profile_.per_block_time;
  }

  /// Cost of `ops` simple word operations (index shuffling, map updates).
  [[nodiscard]] sim_time word_ops_time(std::uint64_t ops) const {
    return static_cast<sim_time>(static_cast<double>(ops) * 1e9 /
                                 profile_.word_ops_per_second);
  }

  [[nodiscard]] const cpu_profile& profile() const noexcept {
    return profile_;
  }

 private:
  cpu_profile profile_;
};

}  // namespace horam::sim

#endif  // HORAM_SIM_CPU_MODEL_H
