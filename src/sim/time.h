// Simulated time base.
//
// The whole evaluation runs in virtual time: device models return the
// duration an operation would take on the modelled hardware, and the
// orchestrating layer (ORAM controller, benchmark harness) advances a
// sim_clock — taking the max of overlapped resources, the sum of serial
// ones. This reproduces the paper's real-machine measurements on any
// host, deterministically.
#ifndef HORAM_SIM_TIME_H
#define HORAM_SIM_TIME_H

#include <cstdint>

#include "util/contracts.h"
#include "util/units.h"

namespace horam::sim {

/// Virtual time and durations, in nanoseconds.
using sim_time = std::int64_t;

/// A monotonically advancing virtual clock. One per simulation; passed by
/// reference to components that need to timestamp events (no globals).
class sim_clock {
 public:
  /// Current virtual time since simulation start.
  [[nodiscard]] sim_time now() const noexcept { return now_; }

  /// Advances the clock; duration must be non-negative.
  void advance(sim_time duration) {
    expects(duration >= 0, "clock cannot move backwards");
    now_ += duration;
  }

  /// Resets to time zero (between benchmark phases).
  void reset() noexcept { now_ = 0; }

 private:
  sim_time now_ = 0;
};

}  // namespace horam::sim

#endif  // HORAM_SIM_TIME_H
