// First-order block-device timing model.
//
// A block_device models positioning (seek) plus streaming transfer: an
// operation that starts where the previous one ended streams at the
// profile's sequential throughput; any other operation pays the seek
// penalty first. This captures the HDD behaviour the paper's evaluation
// rests on — random page reads are 10-20x slower than sequential scans —
// and degenerates gracefully to SSD/DRAM-like devices by shrinking the
// seek term.
//
// Devices account time but do not advance a global clock: callers decide
// how device time composes (serial vs overlapped with memory work).
#ifndef HORAM_SIM_DEVICE_H
#define HORAM_SIM_DEVICE_H

#include <cstdint>
#include <string>

#include "sim/stats.h"
#include "sim/time.h"

namespace horam::sim {

/// Timing parameters of a device. Throughputs are bytes per second of
/// streaming transfer; seek_time is the cost of any repositioning;
/// per_op_time is fixed command overhead (controller, interface).
struct device_profile {
  std::string name;
  sim_time seek_time = 0;
  double read_bytes_per_second = 0.0;
  double write_bytes_per_second = 0.0;
  sim_time per_op_time = 0;
};

/// A byte-addressed device with seek-aware timing and operation counters.
class block_device {
 public:
  explicit block_device(device_profile profile);

  /// Cost of reading `size` bytes at `offset`; updates head position and
  /// statistics. Returns the operation duration.
  sim_time read(std::uint64_t offset, std::uint64_t size);

  /// Cost of writing `size` bytes at `offset`; same accounting as read().
  sim_time write(std::uint64_t offset, std::uint64_t size);

  [[nodiscard]] const device_profile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const io_stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  /// Forgets the head position so the next access pays a seek
  /// (models an intervening workload or power cycle).
  void invalidate_head() noexcept { head_valid_ = false; }

  /// Opens a round-trip scope: every read/write until the matching
  /// end_trip() counts as one request/response exchange with the device
  /// (io_stats::round_trips), because nothing in the batch depends on
  /// another element's result. Scopes nest — inner scopes fold into the
  /// outermost — and an empty scope counts nothing. Scopes change
  /// statistics only, never timing, so wrapping existing code is
  /// bit-for-bit neutral on the simulated clock.
  void begin_trip() noexcept {
    if (trip_depth_++ == 0) {
      trip_ops_ = false;
    }
  }
  void end_trip() noexcept {
    if (trip_depth_ > 0 && --trip_depth_ == 0 && trip_ops_) {
      ++stats_.round_trips;
    }
  }

 private:
  sim_time transfer_time(std::uint64_t size, double bytes_per_second) const;

  /// Called by read()/write(): outside any scope each operation is its
  /// own dependent exchange; inside a scope the batch counts once.
  void count_trip() noexcept {
    if (trip_depth_ == 0) {
      ++stats_.round_trips;
    } else {
      trip_ops_ = true;
    }
  }

  device_profile profile_;
  std::uint64_t head_position_ = 0;
  bool head_valid_ = false;
  std::uint32_t trip_depth_ = 0;
  bool trip_ops_ = false;
  io_stats stats_;
};

/// RAII round-trip scope over up to two devices (a scheme may touch its
/// memory and storage lanes in one batched exchange). Null devices are
/// ignored, so callers can pass optional lanes unconditionally.
class trip_scope {
 public:
  explicit trip_scope(block_device* a, block_device* b = nullptr) noexcept
      : a_(a), b_(b) {
    if (a_ != nullptr) {
      a_->begin_trip();
    }
    if (b_ != nullptr) {
      b_->begin_trip();
    }
  }
  ~trip_scope() {
    if (a_ != nullptr) {
      a_->end_trip();
    }
    if (b_ != nullptr) {
      b_->end_trip();
    }
  }
  trip_scope(const trip_scope&) = delete;
  trip_scope& operator=(const trip_scope&) = delete;

 private:
  block_device* a_;
  block_device* b_;
};

}  // namespace horam::sim

#endif  // HORAM_SIM_DEVICE_H
