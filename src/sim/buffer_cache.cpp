#include "sim/buffer_cache.h"

#include "util/contracts.h"
#include "util/math.h"

namespace horam::sim {

buffer_cache::buffer_cache(block_device& device, buffer_cache_config config)
    : device_(device), config_(config) {
  expects(config_.page_size > 0, "page size must be positive");
  expects(config_.capacity_pages > 0, "cache needs at least one page");
}

sim_time buffer_cache::evict_one() {
  invariant(!lru_.empty(), "evict called on empty cache");
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  const auto it = pages_.find(victim);
  invariant(it != pages_.end(), "LRU list and page map out of sync");

  sim_time cost = 0;
  if (it->second.dirty) {
    cost += device_.write(victim * config_.page_size, config_.page_size);
    ++stats_.writebacks;
  }
  pages_.erase(it);
  ++stats_.evictions;
  return cost;
}

sim_time buffer_cache::touch(std::uint64_t page, bool mark_dirty,
                             bool fill_from_device) {
  sim_time cost = 0;
  const auto it = pages_.find(page);
  if (it != pages_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    it->second.dirty = it->second.dirty || mark_dirty;
    cost += config_.hit_time;
    return cost;
  }

  ++stats_.misses;
  while (pages_.size() >= config_.capacity_pages) {
    cost += evict_one();
  }
  if (fill_from_device) {
    cost += device_.read(page * config_.page_size, config_.page_size);
  }
  lru_.push_front(page);
  pages_.emplace(page, page_state{lru_.begin(), mark_dirty});
  return cost;
}

sim_time buffer_cache::read(std::uint64_t offset, std::uint64_t size) {
  expects(size > 0, "zero-size read");
  sim_time cost = 0;
  const std::uint64_t first = offset / config_.page_size;
  const std::uint64_t last = (offset + size - 1) / config_.page_size;
  for (std::uint64_t page = first; page <= last; ++page) {
    cost += touch(page, /*mark_dirty=*/false, /*fill_from_device=*/true);
  }
  return cost;
}

sim_time buffer_cache::write(std::uint64_t offset, std::uint64_t size) {
  expects(size > 0, "zero-size write");
  sim_time cost = 0;
  const std::uint64_t first = offset / config_.page_size;
  const std::uint64_t last = (offset + size - 1) / config_.page_size;
  for (std::uint64_t page = first; page <= last; ++page) {
    const bool partial_head =
        page == first && offset % config_.page_size != 0;
    const bool partial_tail =
        page == last && (offset + size) % config_.page_size != 0;
    // A partially overwritten page must be read before modification; a
    // fully covered page can be allocated without a device fill.
    const bool needs_fill = partial_head || partial_tail;
    cost += touch(page, /*mark_dirty=*/true, needs_fill);
  }
  return cost;
}

sim_time buffer_cache::flush() {
  sim_time cost = 0;
  for (auto& [page, state] : pages_) {
    if (state.dirty) {
      cost += device_.write(page * config_.page_size, config_.page_size);
      state.dirty = false;
      ++stats_.writebacks;
    }
  }
  return cost;
}

sim_time buffer_cache::invalidate() {
  const sim_time cost = flush();
  lru_.clear();
  pages_.clear();
  return cost;
}

}  // namespace horam::sim
