// Named device and CPU profiles.
//
// `hdd_paper()` is calibrated against the thesis measurements (Table 5-2:
// 102.7 / 55.2 MB/s sequential read/write; Tables 5-3/5-4: ~77 us for a
// random 1 KB read, ~1.03 ms for a Path-ORAM request that touches 8
// random 4 KB buckets). The effective seek of 67 us is far below a raw
// 7200 RPM seek because the thesis numbers were taken on a live Linux
// machine where the page cache absorbs most positioning cost;
// `hdd_7200_raw()` models the bare device for sensitivity studies.
#ifndef HORAM_SIM_PROFILES_H
#define HORAM_SIM_PROFILES_H

#include "sim/cpu_model.h"
#include "sim/device.h"
#include "util/units.h"

namespace horam::sim {

/// Paper-calibrated HDD (page-cache-softened 7200 RPM disk).
inline device_profile hdd_paper() {
  return device_profile{.name = "hdd-paper-calibrated",
                        .seek_time = 67 * util::microseconds,
                        .read_bytes_per_second = 102.7e6,
                        .write_bytes_per_second = 55.2e6,
                        .per_op_time = 2 * util::microseconds};
}

/// Raw 7200 RPM disk: average seek + rotational latency, no cache help.
inline device_profile hdd_7200_raw() {
  return device_profile{.name = "hdd-7200-raw",
                        .seek_time = 8500 * util::microseconds,
                        .read_bytes_per_second = 102.7e6,
                        .write_bytes_per_second = 55.2e6,
                        .per_op_time = 50 * util::microseconds};
}

/// SATA SSD.
inline device_profile ssd_sata() {
  return device_profile{.name = "ssd-sata",
                        .seek_time = 40 * util::microseconds,
                        .read_bytes_per_second = 520e6,
                        .write_bytes_per_second = 460e6,
                        .per_op_time = 10 * util::microseconds};
}

/// NVMe SSD.
inline device_profile nvme() {
  return device_profile{.name = "nvme",
                        .seek_time = 8 * util::microseconds,
                        .read_bytes_per_second = 3200e6,
                        .write_bytes_per_second = 2800e6,
                        .per_op_time = 2 * util::microseconds};
}

/// RTT-dominated remote block store (the client/server deployment the
/// paper targets): every command pays a ~200 us network round trip, and
/// bandwidth is a modest datacenter link, so the number of dependent
/// exchanges — io_stats::round_trips — dominates the bill, not bytes.
/// No seek term: a remote object store has no head to reposition.
inline device_profile net_remote() {
  return device_profile{.name = "net-remote",
                        .seek_time = 0,
                        .read_bytes_per_second = 120e6,
                        .write_bytes_per_second = 120e6,
                        .per_op_time = 200 * util::microseconds};
}

/// DDR4-class main memory as a "device" (the in-memory ORAM layer).
inline device_profile dram_ddr4() {
  return device_profile{.name = "dram-ddr4",
                        .seek_time = 60,  // row activation, ns
                        .read_bytes_per_second = 20e9,
                        .write_bytes_per_second = 20e9,
                        .per_op_time = 50};
}

/// CPU with AES-NI-class crypto throughput (the control layer).
inline cpu_profile cpu_aesni() {
  return cpu_profile{.name = "cpu-aesni",
                     .crypto_bytes_per_second = 10e9,
                     .per_block_time = 50,
                     .word_ops_per_second = 1e9};
}

/// CPU doing software crypto only (no AES-NI), for sensitivity studies.
inline cpu_profile cpu_soft_crypto() {
  return cpu_profile{.name = "cpu-soft-crypto",
                     .crypto_bytes_per_second = 800e6,
                     .per_block_time = 120,
                     .word_ops_per_second = 1e9};
}

}  // namespace horam::sim

#endif  // HORAM_SIM_PROFILES_H
