// H-ORAM public facade: the one header applications include.
//
//   #include "horam.h"
//
//   horam::client oram = horam::client_builder()
//                            .blocks(1 << 16)
//                            .cache_ratio(0.125)
//                            .payload_bytes(64)
//                            .backend(horam::backend_kind::partitioned)
//                            .storage_profile("hdd")
//                            .build();
//   oram.write(1234, data);
//   std::vector<std::uint8_t> back = oram.read(1234);
//
// The builder assembles a whole simulated machine (storage device,
// memory device, CPU model, RNG, optional bus trace), picks one of the
// pluggable oram_backend implementations, and wires the controller on
// top. The resulting client owns everything, so callers never juggle
// device lifetimes by hand.
//
// Multi-tenant deployments use build_service() instead: the service
// owns the client and exposes per-tenant session handles whose
// async_read / async_write return future-style tickets; step() /
// run_until_idle() pump the scheduler, interleaving the pending
// requests across tenants under a pluggable fairness policy
// (round-robin or weighted-share), with access-control grants,
// per-tenant stats and an admission-queue depth limit at the facade:
//
//   horam::service svc = horam::client_builder()
//                            .blocks(1 << 16)
//                            .payload_bytes(64)
//                            .cache_ratio(0.125)
//                            .fairness(horam::fairness_kind::round_robin)
//                            .build_service();
//   horam::session alice = svc.open_session();
//   horam::ticket t = alice.async_read(1234);
//   svc.run_until_idle();              // or: t.result() pumps for you
//   const horam::ticket_result& r = t.result();  // payload, latency
//
// Scaling out is one more builder call: shards(n) stripes the block
// space over n independent controller shards behind an oblivious batch
// router (core/engine.h) — requests route by a keyed PRF over the block
// id, every shard's round is padded to a public cap so the per-shard
// bus shape stays data-independent, and shards(1) is bit-for-bit the
// historical single-controller machine. threads(n) additionally runs
// the shard lanes on n real worker threads (src/runtime/): traces,
// stats and completion times stay bit-for-bit identical to the
// single-threaded machine — only wall-clock time changes.
//
// coalescing(on) adds the round-scoped request-coalescing table
// (src/coalesce/): same-block requests of one engine round — across
// sessions and tenants — merge into a single physical ORAM access and
// the result fans back out to every waiting ticket. Rounds stay padded
// to the public cap, so the bus shape is unchanged by construction;
// skewed workloads simply retire more logical requests per physical
// access. coalescing(off) — the default — is bit-for-bit the
// non-coalescing machine.
//
// Layering (Figure 4-1 of the paper, plus the service and engine
// layers):
//
//   application ──► service / sessions (async multi-tenant API:
//                     │                 tickets, fairness, grants)
//                     └─► tenant scheduler — fairness picks, admission
//                           └─► engine — oblivious batch-router:
//                                 │       PRF routing, padded rounds,
//                                 │       completion ordering
//                                 │   └─ coalescer — round-scoped
//                                 │        dedup / fan-out table
//                                 │        (trusted memory, trace-free)
//                                 ├─► controller shard 0 ─┐ cache tree,
//                                 ├─► controller shard 1 ─┤ ROB, secure
//                                 └─► ...                 ┘ scheduler
//                                       └─► oram_backend — pluggable
//                                             │  per-shard store
//                                             ├─ partitioned (§4.1.3)
//                                             ├─ sqrt
//                                             ├─ partition
//                                             ├─ path (Path ORAM +
//                                             │     recursive map)
//                                             ├─ ring (Ring ORAM: one
//                                             │     slot/bucket,
//                                             │     XOR reads)
//                                             └─ hier (succinct index,
//                                                   │   one-round-trip
//                                                   │   batched probes)
//                                                   └─► per-shard
//                                                       sim devices
#ifndef HORAM_HORAM_H
#define HORAM_HORAM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/controller.h"
#include "core/engine.h"
#include "core/fairness.h"
#include "core/multi_user.h"
#include "core/oram_backend.h"
#include "oram/hier/hier_backend.h"
#include "oram/partition/partition_backend.h"
#include "oram/path/path_backend.h"
#include "oram/ring/ring_backend.h"
#include "oram/sqrt/sqrt_backend.h"
#include "sim/profiles.h"
#include "workload/generators.h"

namespace horam {

/// The pluggable oblivious stores a client can front.
enum class backend_kind : std::uint8_t {
  /// H-ORAM's partitioned storage layer (§4.1.3) — the default.
  partitioned,
  /// Square-root ORAM array with Melbourne reshuffles (§2.1.3).
  sqrt,
  /// Partition ORAM with isolated per-partition shuffles (§2.1.4).
  partition,
  /// Path ORAM tree with a recursive position map (Stefanov et al.,
  /// "Path ORAM: An Extremely Simple Oblivious RAM Protocol").
  path,
  /// Ring ORAM tree (Ren et al., "Constants Count: Practical Improvements
  /// to Oblivious RAM"): Z real + S dummy slots per bucket under a secret
  /// permutation, one slot read per bucket online (XOR-combined into a
  /// single transfer under ring_xor), deterministic reverse-lexicographic
  /// evictions decoupled from reads, early reshuffle on count.
  ring,
  /// Single-round-trip hierarchical store (oram/hier/): geometric
  /// levels of permuted slots with a trusted-memory succinct index, so
  /// every online access ships all its per-level probes — real probe at
  /// the resident level, fresh dummy probes elsewhere — as one batched
  /// exchange with the device. Level merges and refreshes are streaming
  /// range transfers behind the stepped shuffle-job API.
  hier,
};

/// Every selectable backend, in presentation order (comparison tables,
/// parameterised tests).
inline constexpr backend_kind all_backend_kinds[] = {
    backend_kind::partitioned, backend_kind::sqrt, backend_kind::partition,
    backend_kind::path, backend_kind::ring, backend_kind::hier};

/// Human-readable backend name
/// ("partitioned" / "sqrt" / "partition" / "path" / "ring" / "hier").
[[nodiscard]] std::string_view backend_name(backend_kind kind);

/// The canonical backend names, index-aligned with all_backend_kinds —
/// the single list name parsing, CLIs, benches and tests share, so
/// adding a backend never chases hard-coded string quartets again.
[[nodiscard]] std::span<const std::string_view> backend_names();

/// Parses a backend name (canonical names plus the aliases "horam",
/// "path-oram" and "ring-oram"); throws contract_error on unknown
/// names.
[[nodiscard]] backend_kind backend_by_name(std::string_view name);

/// Every shuffle execution policy, in presentation order (comparison
/// tables, parameterised tests).
inline constexpr shuffle_policy all_shuffle_policies[] = {
    shuffle_policy::foreground, shuffle_policy::async_writeback,
    shuffle_policy::offloaded, shuffle_policy::incremental};

/// Human-readable shuffle-policy name ("foreground" / "async-writeback"
/// / "offloaded" / "incremental").
[[nodiscard]] std::string_view shuffle_policy_name(shuffle_policy policy);

/// The canonical shuffle-policy names, index-aligned with
/// all_shuffle_policies — the single list name parsing, CLIs, benches
/// and tests share.
[[nodiscard]] std::span<const std::string_view> shuffle_policy_names();

/// Parses a shuffle-policy name (canonical names plus the alias
/// "async_writeback"); throws contract_error on unknown names.
[[nodiscard]] shuffle_policy shuffle_policy_by_name(std::string_view name);

/// Human-readable runtime-policy name ("sim" / "threaded").
[[nodiscard]] std::string_view runtime_policy_name(runtime_policy policy);

/// The canonical runtime-policy names, index-aligned with
/// all_runtime_policies (runtime/runtime_policy.h) — the single list
/// name parsing, CLIs, benches and tests share.
[[nodiscard]] std::span<const std::string_view> runtime_policy_names();

/// Parses a runtime-policy name; throws contract_error on unknown
/// names.
[[nodiscard]] runtime_policy runtime_policy_by_name(std::string_view name);

/// Every storage layout, in presentation order (comparison tables,
/// parameterised tests).
inline constexpr storage::storage_layout all_storage_layouts[] = {
    storage::storage_layout::flat, storage::storage_layout::page};

/// Human-readable storage-layout name ("flat" / "page").
[[nodiscard]] std::string_view storage_layout_name(
    storage::storage_layout layout);

/// The canonical storage-layout names, index-aligned with
/// all_storage_layouts — the single list name parsing, CLIs, benches
/// and tests share.
[[nodiscard]] std::span<const std::string_view> storage_layout_names();

/// Parses a storage-layout name; throws contract_error on unknown
/// names.
[[nodiscard]] storage::storage_layout storage_layout_by_name(
    std::string_view name);

/// Named storage profile lookup: "hdd" (paper-calibrated), "hdd-raw",
/// "ssd", "nvme", "net-remote", "dram". Throws contract_error on
/// unknown names.
[[nodiscard]] sim::device_profile storage_profile_by_name(
    std::string_view name);

/// Constructs one of the pluggable backends on `device`. Used by the
/// builder; also handy for tests that drive a backend directly. The
/// path and ring backends place their recursive position-map chains on
/// `map_device` (null = share `device`; the builder passes the
/// machine's memory device); other kinds ignore it.
[[nodiscard]] std::unique_ptr<oram_backend> make_backend(
    backend_kind kind, const horam_config& config,
    sim::block_device& device, const sim::cpu_model& cpu,
    util::random_source& rng, oram::access_trace* trace,
    const std::function<void(oram::block_id, std::span<std::uint8_t>)>*
        filler,
    sim::block_device* map_device = nullptr);

/// A fully wired H-ORAM instance: devices, CPU, RNG, backend and
/// controller, owned together. Move-only; build with client_builder.
class client {
 public:
  client(client&&) noexcept;
  client& operator=(client&&) noexcept;
  client(const client&) = delete;
  client& operator=(const client&) = delete;
  ~client();

  // --- Single-block API. ---
  [[nodiscard]] std::vector<std::uint8_t> read(oram::block_id id);
  void write(oram::block_id id, std::span<const std::uint8_t> data);

  // --- Batch API. ---
  void run(std::span<const request> requests,
           std::vector<request_result>* results = nullptr);

  // --- Incremental session API. ---
  void submit(request req);
  void submit(std::span<const request> requests);
  [[nodiscard]] std::size_t pending() const noexcept;
  void drain(std::vector<request_result>* results = nullptr);

  // --- Introspection. ---
  /// Controller counters, aggregated across shards (application-level:
  /// the router's padding traffic is excluded from requests / hits /
  /// misses; see engine::stats()).
  [[nodiscard]] const controller_stats& stats() const noexcept;
  /// Zeroes every shard's controller and device counters plus the
  /// router counters (benches exclude warm-up); virtual time keeps
  /// running.
  void reset_stats() noexcept;
  [[nodiscard]] sim::sim_time now() const noexcept;
  [[nodiscard]] const horam_config& config() const noexcept;
  [[nodiscard]] backend_kind kind() const noexcept { return kind_; }
  /// Shard 0's oblivious store (exact for shards(1); per-shard stores
  /// via eng().shard(i).backend()).
  [[nodiscard]] const oram_backend& backend() const noexcept;
  /// Shard 0's bus trace, when the builder enabled tracing (null
  /// otherwise; per-shard traces via eng().shard_trace(i)).
  [[nodiscard]] const oram::access_trace* trace() const noexcept;
  /// Shard 0's device lane (per-shard lanes via eng()).
  [[nodiscard]] sim::block_device& storage_device() noexcept;
  [[nodiscard]] sim::block_device& memory_device() noexcept;
  /// Trusted-memory bytes of the control layer (reporting).
  [[nodiscard]] std::uint64_t control_memory_bytes() const;

  /// The sharded engine, for layers that compose on it (the tenant
  /// scheduler) and for routing/round-shape audits.
  [[nodiscard]] engine& eng() noexcept;
  [[nodiscard]] const engine& eng() const noexcept;

  /// Shard 0's controller — exact for shards(1) clients (geometry-aware
  /// audits, historical composition); per-shard via eng().shard(i).
  [[nodiscard]] controller& ctrl() noexcept;
  [[nodiscard]] const controller& ctrl() const noexcept;

 private:
  friend class client_builder;

  struct machine_state;
  client(std::unique_ptr<machine_state> state, backend_kind kind);

  std::unique_ptr<machine_state> state_;
  backend_kind kind_ = backend_kind::partitioned;
};

class service;

/// Service-layer tuning knobs (client_builder::build_service()).
struct service_config {
  /// Cross-tenant scheduling policy (ignored when custom_policy set).
  fairness_kind policy = fairness_kind::round_robin;
  /// Factory for a custom fairness policy (full pluggability).
  std::function<std::unique_ptr<fairness_policy>()> custom_policy;
  /// Max admitted-but-unserviced requests per tenant; async_read /
  /// async_write throw queue_overflow beyond it (0 = unlimited).
  std::size_t max_queue_depth = 0;
};

/// Fluent builder for client instances. Every setter has a sensible
/// default (the paper's experimental machine, the partitioned backend),
/// so `client_builder().blocks(n).payload_bytes(b).build()` works.
class client_builder {
 public:
  /// Real data blocks protected (N). Required.
  client_builder& blocks(std::uint64_t n);
  /// In-memory cache tree capacity in blocks (n).
  client_builder& memory_blocks(std::uint64_t n);
  /// Alternative to memory_blocks: memory = ratio * blocks (clamped to
  /// the config's validity envelope). The paper's runs use ~1/8.
  client_builder& cache_ratio(double ratio);
  /// Application payload bytes per block. Required.
  client_builder& payload_bytes(std::size_t bytes);
  /// Block size used for device timing (0 = encoded record size).
  client_builder& logical_block_bytes(std::uint64_t bytes);
  /// Path ORAM bucket size (Z).
  client_builder& bucket_size(std::uint32_t z);
  /// Ring ORAM real slots per bucket (the Ring paper's Z; default 16,
  /// from the paper's proven (Z, S, A) = (16, 25, 20) tuple). Only the
  /// ring backend reads it.
  client_builder& ring_bucket_size(std::uint32_t z);
  /// Ring ORAM dummy (spare) slots per bucket (S; default 25). Each
  /// online read consumes one slot per path bucket; a bucket reshuffles
  /// early once S slots are consumed.
  client_builder& ring_spare_slots(std::uint32_t s);
  /// Ring ORAM eviction rate (A; default 20): one deterministic
  /// reverse-lexicographic path eviction every A online reads.
  client_builder& ring_eviction_rate(std::uint32_t a);
  /// Ring ORAM XOR-combined online reads (default on): the storage side
  /// folds the one chosen slot per bucket into a single combined block,
  /// so a path read costs one device transfer; off falls back to one
  /// transfer per chosen slot.
  client_builder& ring_xor(bool enabled);
  /// ring_xor by name ("on" | "off" | "true" | "false"), for configs
  /// and CLIs; throws contract_error naming this setter otherwise. The
  /// const char* overload exists so string literals pick this parse
  /// instead of decaying pointer-to-bool into ring_xor(true).
  client_builder& ring_xor(std::string_view name);
  client_builder& ring_xor(const char* name) {
    return ring_xor(std::string_view(name));
  }
  /// Hier backend geometric growth factor between consecutive levels
  /// (default 4). Larger fan-outs mean fewer levels — fewer probes per
  /// batched access — at the price of bigger, rarer merges. Only the
  /// hier backend reads it.
  client_builder& hier_fanout(std::uint32_t g);
  /// Hier backend dummy budget per level as a fraction of its real
  /// capacity (default 1.0): a level is refreshed in place after
  /// ceil(rate * capacity) probes.
  client_builder& hier_rebuild_rate(double rate);
  /// Bits per entry of the hier backend's trusted succinct index
  /// (default 0 = derive the minimum from the geometry; larger values
  /// reserve headroom and are rejected if they cannot hold it).
  client_builder& hier_index_bits(std::uint32_t bits);
  /// Places the recursive position-map chain of the tree backends
  /// (path, ring) on the storage device instead of the memory device —
  /// the honest client/server wiring, where each map level is a
  /// dependent storage round trip. Default off, bit-for-bit the
  /// historical map-on-memory machine.
  client_builder& map_on_storage(bool enabled);
  /// map_on_storage by name ("on" | "off" | "true" | "false"), for
  /// configs and CLIs; throws contract_error naming this setter
  /// otherwise. The const char* overload exists so string literals pick
  /// this parse instead of decaying pointer-to-bool.
  client_builder& map_on_storage(std::string_view name);
  client_builder& map_on_storage(const char* name) {
    return map_on_storage(std::string_view(name));
  }

  /// Which oblivious store to front (default: partitioned).
  client_builder& backend(backend_kind kind);
  /// Backend by name (see backend_names()), for configs and CLIs;
  /// throws contract_error naming this setter on unknown names.
  client_builder& backend(std::string_view name);
  /// Independent controller shards the engine stripes the block space
  /// over (default 1 = the exact historical single-controller machine).
  /// The memory budget splits evenly across shards; each shard gets its
  /// own backend instance and storage/memory device lane.
  client_builder& shards(std::uint32_t count);
  /// Execution runtime for the shard lanes (default: sim, the
  /// single-threaded discrete-event machine). threaded confines each
  /// shard to a worker thread (src/runtime/); traces, stats and
  /// completion times are identical either way for a fixed seed — only
  /// wall-clock time differs.
  client_builder& runtime(runtime_policy policy);
  /// Runtime by name (see runtime_policy_names()), for configs and
  /// CLIs; throws contract_error naming this setter on unknown names.
  client_builder& runtime(std::string_view name);
  /// Round-scoped request coalescing (src/coalesce/): merge same-block
  /// requests of one engine round into a single physical access and fan
  /// the result back to every waiting ticket. Default off, which is
  /// bit-for-bit the non-coalescing machine; on implies padded rounds
  /// on every shard count so the bus shape stays data-independent.
  client_builder& coalescing(bool enabled);
  /// Coalescing by name ("on" | "off" | "true" | "false"), for configs
  /// and CLIs; throws contract_error naming this setter otherwise. The
  /// const char* overload exists so string literals pick this parse
  /// instead of decaying pointer-to-bool into coalescing(true).
  client_builder& coalescing(std::string_view name);
  client_builder& coalescing(const char* name) {
    return coalescing(std::string_view(name));
  }
  /// Shorthand for the threaded runtime with `n` worker threads
  /// (n >= 1; clamped to the shard count at engine construction, since
  /// a shard is confined to exactly one thread).
  client_builder& threads(std::uint32_t n);
  /// Device-side layout of the tree-resident storage lane (default:
  /// flat, bit-for-bit the historical machine). `page` packs page-sized
  /// subtree segments so a path costs one transfer per segment, with
  /// valid-bit skipping of never-written segments
  /// (storage/page_layout.h). Neutral for the partitioned backend,
  /// whose storage lane is point-access by design.
  client_builder& layout(storage::storage_layout layout);
  /// Layout by name (see storage_layout_names()), for configs and
  /// CLIs; throws contract_error naming this setter on unknown names.
  client_builder& layout(std::string_view name);
  /// Target device page size (bytes) for layout(page); sets the
  /// subtree-segment height (default 16 KiB).
  client_builder& page_bytes(std::uint64_t bytes);
  /// Storage device behind the backend (default: paper-calibrated HDD).
  client_builder& storage_profile(const sim::device_profile& profile);
  client_builder& storage_profile(std::string_view name);
  /// Memory device behind the cache tree (default: DDR4).
  client_builder& memory_profile(const sim::device_profile& profile);
  /// Control-layer CPU (default: AES-NI class).
  client_builder& cpu(const sim::cpu_profile& profile);

  /// Shuffle execution policy (default: foreground).
  client_builder& shuffle(shuffle_policy policy);
  /// Shuffle policy by name (see shuffle_policy_names()), for configs
  /// and CLIs; throws contract_error naming this setter on unknown
  /// names.
  client_builder& shuffle(std::string_view name);
  /// Device-time budget (ns) of one incremental shuffle slice, pumped
  /// between access rounds under shuffle_policy::incremental. 0 =
  /// unbounded: bit-for-bit the foreground machine (default).
  client_builder& shuffle_slice_budget(sim::sim_time budget);
  /// Partial shuffling cadence (1 = full shuffle every period).
  client_builder& shuffle_every(std::uint32_t periods);
  /// Scheduler stages (group size / period fraction).
  client_builder& stages(std::vector<scheduler_stage> stages);

  /// Real sealing (default on) vs plaintext with modelled crypto time.
  client_builder& seal(bool on);
  /// RNG seed (deterministic runs).
  client_builder& seed(std::uint64_t seed);
  /// Record the observable bus trace (client.trace()).
  client_builder& trace(bool on);
  /// Initial payload of every block (default: zero-filled).
  client_builder& filler(
      std::function<void(oram::block_id, std::span<std::uint8_t>)> fill);
  /// Escape hatch: edit the derived horam_config before construction
  /// (ablation benches tweaking fields the builder does not expose).
  client_builder& config_tweak(std::function<void(horam_config&)> tweak);

  // --- Service-layer knobs (build_service()). ---
  /// Cross-tenant fairness policy (default: round-robin).
  client_builder& fairness(fairness_kind kind);
  /// Policy by name ("round-robin" | "weighted-share"), for configs
  /// and CLIs; throws contract_error on unknown names.
  client_builder& fairness(std::string_view name);
  /// Custom fairness policy: the factory is invoked once per service.
  client_builder& fairness(
      std::function<std::unique_ptr<fairness_policy>()> factory);
  /// Per-tenant admission-queue depth limit (0 = unlimited).
  client_builder& max_queue_depth(std::size_t depth);

  /// Assembles the machine and returns the ready client. Throws
  /// contract_error naming the missing/invalid setter when the
  /// configuration is incomplete.
  [[nodiscard]] client build() const;

  /// Assembles the machine and wraps it in the asynchronous
  /// multi-tenant service layer.
  [[nodiscard]] service build_service() const;

 private:
  horam_config config_{};
  service_config service_{};
  double cache_ratio_ = 0.0;  // 0 = use config_.memory_blocks
  backend_kind kind_ = backend_kind::partitioned;
  sim::device_profile storage_profile_ = sim::hdd_paper();
  sim::device_profile memory_profile_ = sim::dram_ddr4();
  sim::cpu_profile cpu_profile_ = sim::cpu_aesni();
  std::uint64_t seed_ = 2019;
  bool trace_ = false;
  std::function<void(oram::block_id, std::span<std::uint8_t>)> filler_;
  std::function<void(horam_config&)> tweak_;
};

// ------------------------------------------------------- service layer

/// Outcome of one completed service request.
struct ticket_result {
  /// Read payload (empty for writes).
  std::vector<std::uint8_t> payload;
  /// Simulated latency: completion minus submission (queueing counts).
  sim::sim_time latency = 0;
  /// Virtual timestamp at which the request completed.
  sim::sim_time sim_time = 0;
  /// Control-layer knowledge: memory-resident when first scheduled
  /// (never observable on the bus).
  bool hit = false;
};

/// Future-style handle for one admitted request. Lightweight and
/// copyable; survives its session handle, but observes the service
/// weakly — result() on an unfinished ticket throws once every
/// service/session handle is gone (so stray tickets cannot keep the
/// whole machine alive).
class ticket {
 public:
  ticket() = default;

  /// False for default-constructed tickets only.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  /// Service-wide request sequence number.
  [[nodiscard]] std::uint64_t id() const;
  /// The tenant that submitted the request.
  [[nodiscard]] std::uint32_t tenant() const;
  /// True once the request has completed (result() will not pump).
  [[nodiscard]] bool ready() const noexcept;
  /// Blocking get: pumps service.step() until this request completes,
  /// then returns the payload / latency / completion sim_time. Throws
  /// contract_error on empty tickets or when the service is gone.
  [[nodiscard]] const ticket_result& result();

 private:
  friend class service;
  friend class session;
  struct state;
  explicit ticket(std::shared_ptr<state> s) : state_(std::move(s)) {}
  std::shared_ptr<state> state_;
};

class session;

/// Asynchronous multi-tenant service over one client: per-tenant
/// sessions admit requests (validated against grants and the
/// queue-depth limit immediately, so rejection is trace-free), and
/// step() / run_until_idle() pump the scheduler, interleaving pending
/// requests across tenants under the configured fairness policy.
/// Service and session handles share ownership of the underlying
/// machine (tickets hold it weakly); copying a service is cheap and
/// aliases the same instance.
class service {
 public:
  /// Wraps a ready client. Usually spelled client_builder::
  /// build_service(); direct construction suits tests that prepared
  /// the client separately.
  explicit service(client&& oram, service_config config = {});

  /// Registers a tenant with relative share weight `weight` (> 0,
  /// used by weighted-share) and returns its session handle.
  [[nodiscard]] session open_session(double weight = 1.0);

  /// Restricts `tenant` to `grant` from now on. Admission-time checks
  /// mean a denied request never reaches the ORAM.
  void grant(std::uint32_t tenant, user_grant grant);

  /// Serves one scheduling round; returns false (doing nothing) when
  /// no request is pending.
  bool step();
  /// Pumps step() until every tenant queue is drained.
  void run_until_idle();
  [[nodiscard]] bool idle() const;
  /// Admitted-but-unserviced requests across all tenants.
  [[nodiscard]] std::size_t pending() const;

  /// Per-tenant counters since the last reset_stats().
  [[nodiscard]] horam::tenant_stats tenant_stats(
      std::uint32_t tenant) const;
  [[nodiscard]] std::size_t tenant_count() const;
  /// Zeroes per-tenant and controller/device counters (warm-up
  /// exclusion); in-flight requests stay admitted.
  void reset_stats();

  // --- Introspection (aggregate, forwarded to the client). ---
  [[nodiscard]] const controller_stats& stats() const noexcept;
  [[nodiscard]] sim::sim_time now() const noexcept;
  [[nodiscard]] const horam_config& config() const noexcept;
  [[nodiscard]] std::string_view policy_name() const;
  /// The wrapped client (trace access, geometry-aware audits).
  [[nodiscard]] client& underlying() noexcept;
  [[nodiscard]] const client& underlying() const noexcept;

 private:
  friend class session;
  friend class ticket;
  struct impl;
  std::shared_ptr<impl> impl_;
};

/// Per-tenant handle onto a service: submits asynchronous reads and
/// writes, returning tickets. Copyable; all copies refer to the same
/// tenant and keep the service alive.
class session {
 public:
  session() = delete;

  /// Admits a read; throws access_denied / queue_overflow /
  /// contract_error before anything is queued.
  [[nodiscard]] ticket async_read(oram::block_id id);
  /// Admits a write of `data` (padded/truncated to the payload size).
  [[nodiscard]] ticket async_write(oram::block_id id,
                                   std::span<const std::uint8_t> data);

  [[nodiscard]] std::uint32_t tenant() const noexcept { return tenant_; }
  /// This tenant's admitted-but-unserviced request count.
  [[nodiscard]] std::size_t pending() const;
  /// This tenant's counters since the last service reset_stats().
  [[nodiscard]] horam::tenant_stats stats() const;

 private:
  friend class service;
  session(std::shared_ptr<service::impl> impl, std::uint32_t tenant)
      : impl_(std::move(impl)), tenant_(tenant) {}
  [[nodiscard]] ticket admit(request req);

  std::shared_ptr<service::impl> impl_;
  std::uint32_t tenant_ = 0;
};

}  // namespace horam

#endif  // HORAM_HORAM_H
