// H-ORAM public facade: the one header applications include.
//
//   #include "horam.h"
//
//   horam::client oram = horam::client_builder()
//                            .blocks(1 << 16)
//                            .cache_ratio(0.125)
//                            .payload_bytes(64)
//                            .backend(horam::backend_kind::partitioned)
//                            .storage_profile("hdd")
//                            .build();
//   oram.write(1234, data);
//   std::vector<std::uint8_t> back = oram.read(1234);
//
// The builder assembles a whole simulated machine (storage device,
// memory device, CPU model, RNG, optional bus trace), picks one of the
// pluggable oram_backend implementations, and wires the controller on
// top. The resulting client owns everything, so callers never juggle
// device lifetimes by hand.
//
// Layering (Figure 4-1 of the paper):
//
//   application ──► client (this facade)
//                     └─► controller      — cache tree + ROB + scheduler
//                           └─► oram_backend — pluggable oblivious store
//                                 ├─ partitioned (H-ORAM §4.1.3, default)
//                                 ├─ sqrt        (Goldreich-Ostrovsky)
//                                 └─ partition   (Stefanov et al.)
//                                       └─► sim::block_device profiles
#ifndef HORAM_HORAM_H
#define HORAM_HORAM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/controller.h"
#include "core/multi_user.h"
#include "core/oram_backend.h"
#include "oram/partition/partition_backend.h"
#include "oram/sqrt/sqrt_backend.h"
#include "sim/profiles.h"
#include "workload/generators.h"

namespace horam {

/// The pluggable oblivious stores a client can front.
enum class backend_kind : std::uint8_t {
  /// H-ORAM's partitioned storage layer (§4.1.3) — the default.
  partitioned,
  /// Square-root ORAM array with Melbourne reshuffles (§2.1.3).
  sqrt,
  /// Partition ORAM with isolated per-partition shuffles (§2.1.4).
  partition,
};

/// Human-readable backend name ("partitioned" / "sqrt" / "partition").
[[nodiscard]] std::string_view backend_name(backend_kind kind);

/// Parses a backend name; throws contract_error on unknown names.
[[nodiscard]] backend_kind backend_by_name(std::string_view name);

/// Named storage profile lookup: "hdd" (paper-calibrated), "hdd-raw",
/// "ssd", "nvme". Throws contract_error on unknown names.
[[nodiscard]] sim::device_profile storage_profile_by_name(
    std::string_view name);

/// Constructs one of the pluggable backends on `device`. Used by the
/// builder; also handy for tests that drive a backend directly.
[[nodiscard]] std::unique_ptr<oram_backend> make_backend(
    backend_kind kind, const horam_config& config,
    sim::block_device& device, const sim::cpu_model& cpu,
    util::random_source& rng, oram::access_trace* trace,
    const std::function<void(oram::block_id, std::span<std::uint8_t>)>*
        filler);

/// A fully wired H-ORAM instance: devices, CPU, RNG, backend and
/// controller, owned together. Move-only; build with client_builder.
class client {
 public:
  client(client&&) noexcept;
  client& operator=(client&&) noexcept;
  client(const client&) = delete;
  client& operator=(const client&) = delete;
  ~client();

  // --- Single-block API. ---
  [[nodiscard]] std::vector<std::uint8_t> read(oram::block_id id);
  void write(oram::block_id id, std::span<const std::uint8_t> data);

  // --- Batch API. ---
  void run(std::span<const request> requests,
           std::vector<request_result>* results = nullptr);

  // --- Incremental session API. ---
  void submit(request req);
  void submit(std::span<const request> requests);
  [[nodiscard]] std::size_t pending() const noexcept;
  void drain(std::vector<request_result>* results = nullptr);

  // --- Introspection. ---
  [[nodiscard]] const controller_stats& stats() const noexcept;
  [[nodiscard]] sim::sim_time now() const noexcept;
  [[nodiscard]] const horam_config& config() const noexcept;
  [[nodiscard]] backend_kind kind() const noexcept { return kind_; }
  [[nodiscard]] const oram_backend& backend() const noexcept;
  /// The bus trace, when the builder enabled tracing (null otherwise).
  [[nodiscard]] const oram::access_trace* trace() const noexcept;
  [[nodiscard]] sim::block_device& storage_device() noexcept;
  [[nodiscard]] sim::block_device& memory_device() noexcept;
  /// Trusted-memory bytes of the control layer (reporting).
  [[nodiscard]] std::uint64_t control_memory_bytes() const;

  /// The underlying controller, for layers that compose on it (e.g.
  /// multi_user_frontend) and for geometry-aware audits.
  [[nodiscard]] controller& ctrl() noexcept;
  [[nodiscard]] const controller& ctrl() const noexcept;

 private:
  friend class client_builder;

  struct machine_state;
  client(std::unique_ptr<machine_state> state, backend_kind kind);

  std::unique_ptr<machine_state> state_;
  backend_kind kind_ = backend_kind::partitioned;
};

/// Fluent builder for client instances. Every setter has a sensible
/// default (the paper's experimental machine, the partitioned backend),
/// so `client_builder().blocks(n).payload_bytes(b).build()` works.
class client_builder {
 public:
  /// Real data blocks protected (N). Required.
  client_builder& blocks(std::uint64_t n);
  /// In-memory cache tree capacity in blocks (n).
  client_builder& memory_blocks(std::uint64_t n);
  /// Alternative to memory_blocks: memory = ratio * blocks (clamped to
  /// the config's validity envelope). The paper's runs use ~1/8.
  client_builder& cache_ratio(double ratio);
  /// Application payload bytes per block. Required.
  client_builder& payload_bytes(std::size_t bytes);
  /// Block size used for device timing (0 = encoded record size).
  client_builder& logical_block_bytes(std::uint64_t bytes);
  /// Path ORAM bucket size (Z).
  client_builder& bucket_size(std::uint32_t z);

  /// Which oblivious store to front (default: partitioned).
  client_builder& backend(backend_kind kind);
  /// Storage device behind the backend (default: paper-calibrated HDD).
  client_builder& storage_profile(const sim::device_profile& profile);
  client_builder& storage_profile(std::string_view name);
  /// Memory device behind the cache tree (default: DDR4).
  client_builder& memory_profile(const sim::device_profile& profile);
  /// Control-layer CPU (default: AES-NI class).
  client_builder& cpu(const sim::cpu_profile& profile);

  /// Shuffle execution policy (default: foreground).
  client_builder& shuffle(shuffle_policy policy);
  /// Partial shuffling cadence (1 = full shuffle every period).
  client_builder& shuffle_every(std::uint32_t periods);
  /// Scheduler stages (group size / period fraction).
  client_builder& stages(std::vector<scheduler_stage> stages);

  /// Real sealing (default on) vs plaintext with modelled crypto time.
  client_builder& seal(bool on);
  /// RNG seed (deterministic runs).
  client_builder& seed(std::uint64_t seed);
  /// Record the observable bus trace (client.trace()).
  client_builder& trace(bool on);
  /// Initial payload of every block (default: zero-filled).
  client_builder& filler(
      std::function<void(oram::block_id, std::span<std::uint8_t>)> fill);
  /// Escape hatch: edit the derived horam_config before construction
  /// (ablation benches tweaking fields the builder does not expose).
  client_builder& config_tweak(std::function<void(horam_config&)> tweak);

  /// Assembles the machine and returns the ready client. Throws
  /// contract_error when the configuration is invalid.
  [[nodiscard]] client build() const;

 private:
  horam_config config_{};
  double cache_ratio_ = 0.0;  // 0 = use config_.memory_blocks
  backend_kind kind_ = backend_kind::partitioned;
  sim::device_profile storage_profile_ = sim::hdd_paper();
  sim::device_profile memory_profile_ = sim::dram_ddr4();
  sim::cpu_profile cpu_profile_ = sim::cpu_aesni();
  std::uint64_t seed_ = 2019;
  bool trace_ = false;
  std::function<void(oram::block_id, std::span<std::uint8_t>)> filler_;
  std::function<void(horam_config&)> tweak_;
};

}  // namespace horam

#endif  // HORAM_HORAM_H
