#include "analysis/pattern_audit.h"

#include <cmath>
#include <optional>

#include "util/contracts.h"

namespace horam::analysis {

double chi_square_uniform(const std::vector<std::uint64_t>& counts) {
  expects(!counts.empty(), "empty histogram");
  std::uint64_t total = 0;
  for (const std::uint64_t count : counts) {
    total += count;
  }
  if (total == 0) {
    return 0.0;
  }
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double statistic = 0.0;
  for (const std::uint64_t count : counts) {
    const double delta = static_cast<double>(count) - expected;
    statistic += delta * delta / expected;
  }
  return statistic;
}

double chi_square_threshold(std::uint64_t dof) {
  expects(dof > 0, "threshold needs at least one degree of freedom");
  const double k = static_cast<double>(dof);
  return k + 6.0 * std::sqrt(2.0 * k);
}

audit_report audit_trace(const oram::access_trace& trace,
                         const audit_config& config) {
  expects(config.partition_count > 0 && config.slots_per_partition > 0,
          "auditor needs the storage geometry");
  audit_report report;

  const std::uint64_t total_slots =
      config.partition_count * config.slots_per_partition;
  std::vector<bool> armed(total_slots, true);
  std::vector<std::uint64_t> leaf_counts(
      std::max<std::uint64_t>(1, config.leaf_count), 0);

  // Per-cycle accumulation.
  bool in_cycle = false;
  std::uint64_t cycle_c = 0;
  std::uint64_t cycle_paths = 0;
  std::vector<std::uint64_t> cycle_read_partitions;
  std::uint64_t cycle_index = 0;

  std::optional<std::uint64_t> pending_partition_check;

  const auto note = [&](std::string text) {
    if (report.violations.size() < 32) {  // cap the noise
      report.violations.push_back(std::move(text));
    }
  };

  const auto finalize_cycle = [&] {
    if (!in_cycle) {
      return;
    }
    if (cycle_paths != cycle_c) {
      note("cycle " + std::to_string(cycle_index) + ": " +
           std::to_string(cycle_paths) + " path accesses, expected " +
           std::to_string(cycle_c));
    }
    if (cycle_read_partitions.empty()) {
      note("cycle " + std::to_string(cycle_index) +
           ": no storage load observed");
    } else {
      for (const std::uint64_t p : cycle_read_partitions) {
        if (p != cycle_read_partitions.front()) {
          note("cycle " + std::to_string(cycle_index) +
               ": storage reads span multiple partitions");
          break;
        }
      }
      if (config.expect_single_read_per_cycle &&
          cycle_read_partitions.size() != 1) {
        note("cycle " + std::to_string(cycle_index) + ": " +
             std::to_string(cycle_read_partitions.size()) +
             " storage reads, expected exactly 1");
      }
    }
    in_cycle = false;
  };

  for (const oram::trace_event& event : trace.events()) {
    switch (event.kind) {
      case oram::event_kind::cycle_begin:
        finalize_cycle();
        in_cycle = true;
        cycle_index = event.a;
        cycle_c = event.b;
        cycle_paths = 0;
        cycle_read_partitions.clear();
        ++report.cycles;
        break;

      case oram::event_kind::storage_read_slot: {
        ++report.storage_reads;
        if (event.a >= total_slots) {
          note("storage read outside the layout: slot " +
               std::to_string(event.a));
          break;
        }
        if (!armed[event.a]) {
          note("slot " + std::to_string(event.a) +
               " read twice without an intervening rewrite");
        }
        armed[event.a] = false;
        if (in_cycle) {
          cycle_read_partitions.push_back(event.a /
                                          config.slots_per_partition);
        }
        break;
      }

      case oram::event_kind::storage_write_slot:
        if (event.a < total_slots) {
          armed[event.a] = true;
        }
        break;

      case oram::event_kind::storage_write_sweep: {
        for (std::uint64_t s = event.a;
             s < event.a + event.b && s < total_slots; ++s) {
          armed[s] = true;
        }
        if (pending_partition_check.has_value()) {
          const std::uint64_t p = *pending_partition_check;
          if (event.a != p * config.slots_per_partition ||
              event.b != config.main_capacity) {
            note("partition " + std::to_string(p) +
                 " shuffle did not rewrite its full main region");
          }
          pending_partition_check.reset();
        }
        break;
      }

      case oram::event_kind::storage_read_sweep:
        break;  // shuffle-phase streaming; arming unaffected

      case oram::event_kind::memory_path_access:
        if (config.leaf_count > 0 && event.a < config.leaf_count) {
          ++leaf_counts[event.a];
        }
        ++report.path_accesses;
        if (in_cycle) {
          ++cycle_paths;
        }
        break;

      case oram::event_kind::memory_bucket_read:
      case oram::event_kind::memory_bucket_write:
        break;  // bucket-level detail of the path events

      case oram::event_kind::shuffle_partition:
        pending_partition_check = event.a;
        break;

      case oram::event_kind::shuffle_begin:
        finalize_cycle();
        ++report.shuffles;
        break;

      case oram::event_kind::period_begin:
        finalize_cycle();
        break;

      case oram::event_kind::shuffle_slice:
        // Incremental shuffle work rides between rounds; the cycle's
        // own I/O is complete once a slice starts.
        finalize_cycle();
        break;
    }
  }
  finalize_cycle();

  // Leaf uniformity, when there are enough samples for the test.
  if (config.leaf_count > 1 &&
      report.path_accesses >= 5 * config.leaf_count) {
    report.leaf_chi_square = chi_square_uniform(leaf_counts);
    const double threshold = chi_square_threshold(config.leaf_count - 1);
    report.leaf_uniformity_ok = report.leaf_chi_square <= threshold;
    if (!report.leaf_uniformity_ok) {
      note("path leaf histogram failed the uniformity test: chi2 = " +
           std::to_string(report.leaf_chi_square) + " > " +
           std::to_string(threshold));
    }
  }
  return report;
}

}  // namespace horam::analysis
