// Closed-form overhead model of §5.1 (Equations 5-1 through 5-6).
//
// All quantities are in block units per request unless stated
// otherwise. N = total blocks, n = blocks that fit in memory, Z = Path
// ORAM bucket size, c = in-memory requests serviced per storage load.
#ifndef HORAM_ANALYSIS_THEORETICAL_H
#define HORAM_ANALYSIS_THEORETICAL_H

#include <cstdint>
#include <vector>

namespace horam::analysis {

/// Read/write amounts in block units.
struct rw_overhead {
  double reads = 0.0;
  double writes = 0.0;

  [[nodiscard]] double total() const noexcept { return reads + writes; }
  /// Time-weighted total given device throughputs (bytes/s are
  /// arbitrary units; only the ratio matters).
  [[nodiscard]] double weighted(double read_bps, double write_bps) const {
    return reads / read_bps + writes / write_bps;
  }
};

/// Eq 5-1: average group size over the stages, weighted by the number
/// of requests per stage.
double average_c(const std::vector<double>& stage_c,
                 const std::vector<double>& stage_fractions);

/// Eq 5-2: total path level of the baseline (memory + storage part).
/// Returns log2(n/Z) + log2(2N/n).
double path_level(double n_blocks, double big_n_blocks, double z);

/// Eq 5-3: baseline Path ORAM storage I/O per request — Z*log2(2N/n)
/// block reads and the same in writes (the tree-top part is in memory).
rw_overhead path_oram_io_per_request(double big_n_blocks, double n_blocks,
                                     double z);

/// Eq 5-4: H-ORAM storage I/O per request — one block read per load
/// plus the amortised shuffle (reads (N - n), writes N, every n*c/2
/// requests).
rw_overhead horam_io_per_request(double big_n_blocks, double n_blocks,
                                 double c);

/// Figure 5-1 ordinate: how many times H-ORAM reduces the baseline's
/// I/O overhead at the given N/n ratio, weighted by the device's
/// read/write throughputs.
double theoretical_gain(double ratio_big_n_over_n, double c, double z,
                        double read_bps, double write_bps);

/// Eq 5-5 / Table 5-1: requests a period serves (n/2 loads, c each).
std::uint64_t requests_per_period(std::uint64_t n_blocks, double c);

/// Eq 5-6 / Table 5-1 rows, in KB for the paper's 1 KB blocks.
struct period_overhead {
  double access_read_kb = 0.0;    // per request during the access period
  double shuffle_read_gb = 0.0;   // per period
  double shuffle_write_gb = 0.0;  // per period
  double average_read_kb = 0.0;   // per request, shuffle amortised
  double average_write_kb = 0.0;
};
period_overhead horam_period_overhead(std::uint64_t big_n_blocks,
                                      std::uint64_t n_blocks, double c,
                                      std::uint64_t block_bytes);

}  // namespace horam::analysis

#endif  // HORAM_ANALYSIS_THEORETICAL_H
