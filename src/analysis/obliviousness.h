// Statistical obliviousness audits (cf. Chung–Liu–Pass: ORAM security
// is a statement about the *distribution* of access patterns).
//
// The structural pattern auditor (pattern_audit.h) checks mechanical
// invariants of one trace — no re-read slots, regular cycles. This
// harness checks the statistical half of the obliviousness claim:
//
//   1. Uniformity — the bus-visible positions a scheme touches
//      (storage slots for flat layouts, path leaves for tree layouts)
//      are uniformly distributed. Checked with a chi-square test on a
//      folded histogram and a one-sample Kolmogorov–Smirnov test on
//      the empirical CDF.
//   2. Workload independence — two *different* request streams driven
//      through identically configured machines produce position
//      streams drawn from the same distribution. Checked with a
//      two-sample Kolmogorov–Smirnov test and a chi-square
//      homogeneity test (sample counts may differ: the cacheable
//      interface makes trace *length* depend on the hit rate by
//      design, §4.1, but never the *distribution* of touched
//      positions).
//
// Thresholds are conservative (false-positive probability ~1e-9 per
// check) so randomized CI runs stay deterministic-stable; a scheme
// that leaks its access pattern overshoots them by orders of
// magnitude. Every test is reproducible from the logged
// HORAM_TEST_SEED (tests/test_support.h).
#ifndef HORAM_ANALYSIS_OBLIVIOUSNESS_H
#define HORAM_ANALYSIS_OBLIVIOUSNESS_H

#include <cstdint>
#include <span>
#include <vector>

#include "oram/common/access_trace.h"

namespace horam::analysis {

// ------------------------------------------------------- extraction

/// Global slot indices of every storage_read_slot event, in order.
/// The right position stream for the flat layouts (partitioned, sqrt,
/// partition); for the path backend the slot is a tree bucket whose
/// marginal distribution is fixed but not uniform — audit its leaves.
std::vector<std::uint64_t> storage_read_positions(
    const oram::access_trace& trace);

/// Leaf labels of memory_path_access events, in order. The right
/// position stream for tree layouts (the path backend, the in-memory
/// cache tree). Several trees may share one trace (cache tree, backend
/// tree, recursive map chain) with distinct leaf universes; a nonzero
/// `leaf_universe` keeps only accesses of trees with exactly that leaf
/// count — pass it whenever the trace could contain more than one tree
/// (e.g. the path backend with active map recursion), or the mixture
/// falsely fails a uniformity audit.
std::vector<std::uint64_t> path_access_leaves(
    const oram::access_trace& trace, std::uint64_t leaf_universe = 0);

/// First-slot positions of storage sweep events, in order. The
/// bus-visible position stream of the page layout (and of shuffle
/// sweeps): each segment read/write surfaces as one sweep whose first
/// slot is a pure function of (group, leaf), so uniform leaf draws
/// induce a fixed sweep-position distribution regardless of workload.
/// `kind` must be storage_read_sweep or storage_write_sweep.
std::vector<std::uint64_t> storage_sweep_positions(
    const oram::access_trace& trace, oram::event_kind kind);

// ------------------------------------------------------- primitives

/// Folds samples over [0, universe) into `cells` equal-width counts.
std::vector<std::uint64_t> fold_histogram(
    std::span<const std::uint64_t> samples, std::uint64_t universe,
    std::size_t cells);

/// One-sample Kolmogorov–Smirnov statistic of `samples` against the
/// discrete uniform distribution on [0, universe).
double ks_uniform_statistic(std::span<const std::uint64_t> samples,
                            std::uint64_t universe);

/// Two-sample Kolmogorov–Smirnov statistic between two sample sets.
double ks_two_sample_statistic(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b);

/// Acceptance thresholds for the KS statistics (false-positive
/// probability ~1e-9: c = 3.3 in c * sqrt(1/n) resp.
/// c * sqrt((n+m)/(n*m))).
double ks_one_sample_threshold(std::uint64_t n);
double ks_two_sample_threshold(std::uint64_t n, std::uint64_t m);

/// Chi-square homogeneity statistic of two histograms over the same
/// cells (are they draws from one distribution?); dof = cells - 1.
double chi_square_homogeneity(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b);

// ------------------------------------------------------- reports

/// Outcome of a uniformity audit over one position stream.
struct uniformity_report {
  std::uint64_t samples = 0;
  std::uint64_t universe = 0;
  std::size_t cells = 0;
  double chi_square = 0.0;
  double chi_threshold = 0.0;
  double ks = 0.0;
  double ks_threshold = 0.0;
  bool chi_ok = true;
  bool ks_ok = true;

  [[nodiscard]] bool passed() const noexcept { return chi_ok && ks_ok; }
};

/// Runs the chi-square and KS uniformity checks on `samples` over
/// [0, universe). `cells` caps the chi-square histogram width; it is
/// clamped so every cell expects >= ~8 samples.
uniformity_report audit_uniformity(std::span<const std::uint64_t> samples,
                                   std::uint64_t universe,
                                   std::size_t cells = 64);

/// Outcome of a two-workload distribution-equality audit.
struct equality_report {
  std::uint64_t samples_a = 0;
  std::uint64_t samples_b = 0;
  std::uint64_t universe = 0;
  std::size_t cells = 0;
  double ks = 0.0;
  double ks_threshold = 0.0;
  double chi_square = 0.0;
  double chi_threshold = 0.0;
  bool ks_ok = true;
  bool chi_ok = true;

  [[nodiscard]] bool passed() const noexcept { return ks_ok && chi_ok; }
};

/// Checks that two position streams over [0, universe) are drawn from
/// the same distribution (two-sample KS + chi-square homogeneity).
equality_report audit_distribution_equality(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    std::uint64_t universe, std::size_t cells = 64);

}  // namespace horam::analysis

#endif  // HORAM_ANALYSIS_OBLIVIOUSNESS_H
