#include "analysis/obliviousness.h"

#include <algorithm>
#include <cmath>

#include "analysis/pattern_audit.h"
#include "util/contracts.h"

namespace horam::analysis {

namespace {

/// KS confidence coefficient: 2 * exp(-2 * c^2) ~ 7e-10 at c = 3.3.
constexpr double ks_confidence_c = 3.3;

/// Minimum expected samples per chi-square cell.
constexpr std::uint64_t min_expected_per_cell = 8;

std::vector<std::uint64_t> sorted_copy(
    std::span<const std::uint64_t> samples) {
  std::vector<std::uint64_t> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

std::vector<std::uint64_t> storage_read_positions(
    const oram::access_trace& trace) {
  std::vector<std::uint64_t> positions;
  for (const oram::trace_event& event : trace.events()) {
    if (event.kind == oram::event_kind::storage_read_slot) {
      positions.push_back(event.a);
    }
  }
  return positions;
}

std::vector<std::uint64_t> path_access_leaves(
    const oram::access_trace& trace, std::uint64_t leaf_universe) {
  std::vector<std::uint64_t> leaves;
  for (const oram::trace_event& event : trace.events()) {
    if (event.kind == oram::event_kind::memory_path_access &&
        (leaf_universe == 0 || event.b == leaf_universe)) {
      leaves.push_back(event.a);
    }
  }
  return leaves;
}

std::vector<std::uint64_t> storage_sweep_positions(
    const oram::access_trace& trace, oram::event_kind kind) {
  expects(kind == oram::event_kind::storage_read_sweep ||
              kind == oram::event_kind::storage_write_sweep,
          "storage_sweep_positions takes a sweep event kind");
  std::vector<std::uint64_t> positions;
  for (const oram::trace_event& event : trace.events()) {
    if (event.kind == kind) {
      positions.push_back(event.a);
    }
  }
  return positions;
}

std::vector<std::uint64_t> fold_histogram(
    std::span<const std::uint64_t> samples, std::uint64_t universe,
    std::size_t cells) {
  expects(universe > 0, "histogram needs a nonzero universe");
  expects(cells > 0, "histogram needs at least one cell");
  std::vector<std::uint64_t> counts(cells, 0);
  for (const std::uint64_t sample : samples) {
    expects(sample < universe, "sample outside the universe");
    // Equal-width cells without overflow: sample / ceil(universe/cells)
    // would skew the last cell, so map through 128-bit arithmetic.
    const auto cell = static_cast<std::size_t>(
        static_cast<unsigned __int128>(sample) * cells / universe);
    ++counts[cell];
  }
  return counts;
}

double ks_uniform_statistic(std::span<const std::uint64_t> samples,
                            std::uint64_t universe) {
  expects(universe > 0, "KS needs a nonzero universe");
  if (samples.empty()) {
    return 0.0;
  }
  const std::vector<std::uint64_t> sorted = sorted_copy(samples);
  const double n = static_cast<double>(sorted.size());
  const double u = static_cast<double>(universe);
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Discrete uniform CDF: F(x) = (x + 1) / U, F(x^-) = x / U.
    const double x = static_cast<double>(sorted[i]);
    const double above = std::abs((static_cast<double>(i) + 1.0) / n -
                                  (x + 1.0) / u);
    const double below =
        std::abs(static_cast<double>(i) / n - x / u);
    d = std::max(d, std::max(above, below));
  }
  return d;
}

double ks_two_sample_statistic(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) {
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  const std::vector<std::uint64_t> sa = sorted_copy(a);
  const std::vector<std::uint64_t> sb = sorted_copy(b);
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const std::uint64_t value = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] == value) {
      ++i;
    }
    while (j < sb.size() && sb[j] == value) {
      ++j;
    }
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

double ks_one_sample_threshold(std::uint64_t n) {
  expects(n > 0, "KS threshold needs samples");
  return ks_confidence_c / std::sqrt(static_cast<double>(n));
}

double ks_two_sample_threshold(std::uint64_t n, std::uint64_t m) {
  expects(n > 0 && m > 0, "KS threshold needs samples on both sides");
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  return ks_confidence_c * std::sqrt((dn + dm) / (dn * dm));
}

double chi_square_homogeneity(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b) {
  expects(a.size() == b.size() && !a.empty(),
          "homogeneity needs two equal-width histograms");
  std::uint64_t total_a = 0;
  std::uint64_t total_b = 0;
  for (std::size_t c = 0; c < a.size(); ++c) {
    total_a += a[c];
    total_b += b[c];
  }
  if (total_a == 0 || total_b == 0) {
    return 0.0;
  }
  const double grand = static_cast<double>(total_a + total_b);
  double statistic = 0.0;
  for (std::size_t c = 0; c < a.size(); ++c) {
    const double pooled = static_cast<double>(a[c] + b[c]);
    if (pooled == 0.0) {
      continue;  // empty cell contributes nothing
    }
    const double ea = pooled * static_cast<double>(total_a) / grand;
    const double eb = pooled * static_cast<double>(total_b) / grand;
    const double da = static_cast<double>(a[c]) - ea;
    const double db = static_cast<double>(b[c]) - eb;
    statistic += da * da / ea + db * db / eb;
  }
  return statistic;
}

uniformity_report audit_uniformity(std::span<const std::uint64_t> samples,
                                   std::uint64_t universe,
                                   std::size_t cells) {
  expects(universe > 0, "uniformity audit needs a nonzero universe");
  expects(!samples.empty(), "uniformity audit needs samples");
  uniformity_report report;
  report.samples = samples.size();
  report.universe = universe;

  // Clamp the histogram so every cell expects enough mass for the
  // chi-square approximation (and never exceeds the universe).
  std::size_t width = std::max<std::size_t>(
      1, std::min<std::size_t>(
             cells, static_cast<std::size_t>(std::min<std::uint64_t>(
                        universe,
                        samples.size() / min_expected_per_cell))));
  report.cells = width;

  const std::vector<std::uint64_t> counts =
      fold_histogram(samples, universe, width);
  report.chi_square = chi_square_uniform(counts);
  report.chi_threshold =
      width > 1 ? chi_square_threshold(width - 1) : 0.0;
  report.chi_ok = width <= 1 || report.chi_square <= report.chi_threshold;

  report.ks = ks_uniform_statistic(samples, universe);
  report.ks_threshold = ks_one_sample_threshold(samples.size());
  report.ks_ok = report.ks <= report.ks_threshold;
  return report;
}

equality_report audit_distribution_equality(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    std::uint64_t universe, std::size_t cells) {
  expects(universe > 0, "equality audit needs a nonzero universe");
  expects(!a.empty() && !b.empty(), "equality audit needs two samples");
  equality_report report;
  report.samples_a = a.size();
  report.samples_b = b.size();
  report.universe = universe;

  report.ks = ks_two_sample_statistic(a, b);
  report.ks_threshold = ks_two_sample_threshold(a.size(), b.size());
  report.ks_ok = report.ks <= report.ks_threshold;

  const std::uint64_t smaller = std::min(a.size(), b.size());
  std::size_t width = std::max<std::size_t>(
      1, std::min<std::size_t>(
             cells, static_cast<std::size_t>(std::min<std::uint64_t>(
                        universe, smaller / min_expected_per_cell))));
  report.cells = width;
  report.chi_square =
      chi_square_homogeneity(fold_histogram(a, universe, width),
                             fold_histogram(b, universe, width));
  report.chi_threshold =
      width > 1 ? chi_square_threshold(width - 1) : 0.0;
  report.chi_ok = width <= 1 || report.chi_square <= report.chi_threshold;
  return report;
}

}  // namespace horam::analysis
