// Pattern auditor: replays an access trace (the adversary's view) and
// checks the obliviousness invariants of DESIGN.md §6.
//
// Checks:
//   1. Storage read uniqueness — a storage slot is read at most once
//      between the writes that refresh it (shuffle sweeps, appends);
//      re-reads are the classic square-root-ORAM leak.
//   2. Cycle regularity — every scheduler cycle performs exactly `c`
//      in-memory path accesses (c from the cycle event) and all its
//      storage reads target one partition (1 read in full-shuffle mode,
//      1 + pending-segments with partial shuffling).
//   3. Path leaf uniformity — in-memory path accesses hit leaves
//      uniformly (chi-square test).
//   4. Shuffle coverage — every due partition's shuffle writes its full
//      main region.
#ifndef HORAM_ANALYSIS_PATTERN_AUDIT_H
#define HORAM_ANALYSIS_PATTERN_AUDIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "oram/common/access_trace.h"

namespace horam::analysis {

/// What the auditor needs to know about the configuration (all public
/// parameters an adversary would also know).
struct audit_config {
  std::uint64_t partition_count = 0;
  std::uint64_t slots_per_partition = 0;
  std::uint64_t main_capacity = 0;
  std::uint64_t leaf_count = 0;
  /// True for full-shuffle configurations: exactly one storage read
  /// per cycle.
  bool expect_single_read_per_cycle = true;
};

/// Audit outcome. `violations` holds human-readable findings; empty
/// means the trace passed every check.
struct audit_report {
  std::vector<std::string> violations;
  std::uint64_t cycles = 0;
  std::uint64_t storage_reads = 0;
  std::uint64_t path_accesses = 0;
  std::uint64_t shuffles = 0;
  /// Chi-square statistic of the leaf histogram (dof = leaf_count - 1).
  double leaf_chi_square = 0.0;
  bool leaf_uniformity_ok = true;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

/// Runs every check against `trace`.
audit_report audit_trace(const oram::access_trace& trace,
                         const audit_config& config);

/// Chi-square statistic of `counts` against the uniform distribution.
double chi_square_uniform(const std::vector<std::uint64_t>& counts);

/// Conservative acceptance threshold for a chi-square statistic with
/// `dof` degrees of freedom (mean + 6 sigma).
double chi_square_threshold(std::uint64_t dof);

}  // namespace horam::analysis

#endif  // HORAM_ANALYSIS_PATTERN_AUDIT_H
