#include "analysis/theoretical.h"

#include <cmath>

#include "util/contracts.h"

namespace horam::analysis {

double average_c(const std::vector<double>& stage_c,
                 const std::vector<double>& stage_fractions) {
  expects(stage_c.size() == stage_fractions.size() && !stage_c.empty(),
          "stage arrays must match and be non-empty");
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t s = 0; s < stage_c.size(); ++s) {
    weighted += stage_c[s] * stage_fractions[s];
    total += stage_fractions[s];
  }
  expects(total > 0.0, "stage fractions must sum to something positive");
  return weighted / total;
}

double path_level(double n_blocks, double big_n_blocks, double z) {
  expects(n_blocks > 0 && big_n_blocks >= n_blocks && z > 0,
          "need 0 < n <= N and Z > 0");
  return std::log2(n_blocks / z) + std::log2(2.0 * big_n_blocks / n_blocks);
}

rw_overhead path_oram_io_per_request(double big_n_blocks, double n_blocks,
                                     double z) {
  expects(n_blocks > 0 && big_n_blocks >= n_blocks,
          "need 0 < n <= N");
  const double storage_levels = std::log2(2.0 * big_n_blocks / n_blocks);
  return rw_overhead{z * storage_levels, z * storage_levels};
}

rw_overhead horam_io_per_request(double big_n_blocks, double n_blocks,
                                 double c) {
  expects(n_blocks > 0 && big_n_blocks >= n_blocks && c > 0,
          "need 0 < n <= N and c > 0");
  const double reads =
      1.0 + 2.0 * (big_n_blocks - n_blocks) / (n_blocks * c);
  const double writes = 2.0 * big_n_blocks / (n_blocks * c);
  return rw_overhead{reads, writes};
}

double theoretical_gain(double ratio_big_n_over_n, double c, double z,
                        double read_bps, double write_bps) {
  expects(ratio_big_n_over_n >= 1.0, "storage must be at least memory-size");
  // Scale-free in n: evaluate at n = 1.
  const rw_overhead path =
      path_oram_io_per_request(ratio_big_n_over_n, 1.0, z);
  const rw_overhead horam =
      horam_io_per_request(ratio_big_n_over_n, 1.0, c);
  return path.weighted(read_bps, write_bps) /
         horam.weighted(read_bps, write_bps);
}

std::uint64_t requests_per_period(std::uint64_t n_blocks, double c) {
  return static_cast<std::uint64_t>(
      static_cast<double>(n_blocks) / 2.0 * c);
}

period_overhead horam_period_overhead(std::uint64_t big_n_blocks,
                                      std::uint64_t n_blocks, double c,
                                      std::uint64_t block_bytes) {
  period_overhead result;
  const double gib = 1024.0 * 1024.0 * 1024.0;
  const double kb = 1024.0;
  const double block_kb = static_cast<double>(block_bytes) / kb;
  const double requests =
      static_cast<double>(requests_per_period(n_blocks, c));

  result.access_read_kb = block_kb;  // one block load per I/O access
  result.shuffle_read_gb = static_cast<double>(big_n_blocks - n_blocks) *
                           static_cast<double>(block_bytes) / gib;
  result.shuffle_write_gb = static_cast<double>(big_n_blocks) *
                            static_cast<double>(block_bytes) / gib;
  result.average_read_kb =
      result.access_read_kb +
      result.shuffle_read_gb * gib / kb / requests;
  result.average_write_kb = result.shuffle_write_gb * gib / kb / requests;
  return result;
}

}  // namespace horam::analysis
