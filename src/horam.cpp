#include "horam.h"

#include <algorithm>
#include <iterator>

#include "util/contracts.h"

namespace horam {

namespace {

/// The one canonical name list; index-aligned with all_backend_kinds.
constexpr std::string_view kBackendNames[] = {
    "partitioned", "sqrt", "partition", "path", "ring", "hier"};
static_assert(std::size(kBackendNames) == std::size(all_backend_kinds),
              "backend name list out of sync with all_backend_kinds");

/// Name-parse shared by backend_by_name and the builder's named setter
/// (so both report the same candidates); nullopt on unknown names.
std::optional<backend_kind> parse_backend_name(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kBackendNames); ++i) {
    if (name == kBackendNames[i]) {
      return all_backend_kinds[i];
    }
  }
  if (name == "horam") {
    return backend_kind::partitioned;
  }
  if (name == "path-oram") {
    return backend_kind::path;
  }
  if (name == "ring-oram") {
    return backend_kind::ring;
  }
  return std::nullopt;
}

/// The one canonical shuffle-policy name list; index-aligned with
/// all_shuffle_policies.
constexpr std::string_view kShufflePolicyNames[] = {
    "foreground", "async-writeback", "offloaded", "incremental"};
static_assert(std::size(kShufflePolicyNames) ==
                  std::size(all_shuffle_policies),
              "shuffle-policy name list out of sync with "
              "all_shuffle_policies");

/// Name-parse shared by shuffle_policy_by_name and the builder's named
/// setter (so both report the same candidates); nullopt on unknown
/// names.
std::optional<shuffle_policy> parse_shuffle_policy_name(
    std::string_view name) {
  for (std::size_t i = 0; i < std::size(kShufflePolicyNames); ++i) {
    if (name == kShufflePolicyNames[i]) {
      return all_shuffle_policies[i];
    }
  }
  if (name == "async_writeback") {
    return shuffle_policy::async_writeback;
  }
  return std::nullopt;
}

/// The one canonical runtime-policy name list; index-aligned with
/// all_runtime_policies.
constexpr std::string_view kRuntimePolicyNames[] = {"sim", "threaded"};
static_assert(std::size(kRuntimePolicyNames) ==
                  std::size(all_runtime_policies),
              "runtime-policy name list out of sync with "
              "all_runtime_policies");

/// Name-parse shared by runtime_policy_by_name and the builder's named
/// setter; nullopt on unknown names.
std::optional<runtime_policy> parse_runtime_policy_name(
    std::string_view name) {
  for (std::size_t i = 0; i < std::size(kRuntimePolicyNames); ++i) {
    if (name == kRuntimePolicyNames[i]) {
      return all_runtime_policies[i];
    }
  }
  return std::nullopt;
}

/// The one canonical storage-layout name list; index-aligned with
/// all_storage_layouts.
constexpr std::string_view kStorageLayoutNames[] = {"flat", "page"};
static_assert(std::size(kStorageLayoutNames) ==
                  std::size(all_storage_layouts),
              "storage-layout name list out of sync with "
              "all_storage_layouts");

/// Name-parse shared by storage_layout_by_name and the builder's named
/// setter; nullopt on unknown names.
std::optional<storage::storage_layout> parse_storage_layout_name(
    std::string_view name) {
  for (std::size_t i = 0; i < std::size(kStorageLayoutNames); ++i) {
    if (name == kStorageLayoutNames[i]) {
      return all_storage_layouts[i];
    }
  }
  return std::nullopt;
}

}  // namespace

std::string_view backend_name(backend_kind kind) {
  const auto index = static_cast<std::size_t>(kind);
  expects(index < std::size(kBackendNames), "unknown backend kind");
  return kBackendNames[index];
}

std::span<const std::string_view> backend_names() { return kBackendNames; }

backend_kind backend_by_name(std::string_view name) {
  const std::optional<backend_kind> kind = parse_backend_name(name);
  expects(kind.has_value(),
          "unknown backend name "
          "(partitioned | sqrt | partition | path | ring | hier)");
  return *kind;
}

std::string_view shuffle_policy_name(shuffle_policy policy) {
  const auto index = static_cast<std::size_t>(policy);
  expects(index < std::size(kShufflePolicyNames),
          "unknown shuffle policy");
  return kShufflePolicyNames[index];
}

std::span<const std::string_view> shuffle_policy_names() {
  return kShufflePolicyNames;
}

shuffle_policy shuffle_policy_by_name(std::string_view name) {
  const std::optional<shuffle_policy> policy =
      parse_shuffle_policy_name(name);
  expects(policy.has_value(),
          "unknown shuffle-policy name (foreground | async-writeback | "
          "offloaded | incremental)");
  return *policy;
}

std::string_view runtime_policy_name(runtime_policy policy) {
  const auto index = static_cast<std::size_t>(policy);
  expects(index < std::size(kRuntimePolicyNames), "unknown runtime policy");
  return kRuntimePolicyNames[index];
}

std::span<const std::string_view> runtime_policy_names() {
  return kRuntimePolicyNames;
}

runtime_policy runtime_policy_by_name(std::string_view name) {
  const std::optional<runtime_policy> policy =
      parse_runtime_policy_name(name);
  expects(policy.has_value(),
          "unknown runtime-policy name (sim | threaded)");
  return *policy;
}

std::string_view storage_layout_name(storage::storage_layout layout) {
  const auto index = static_cast<std::size_t>(layout);
  expects(index < std::size(kStorageLayoutNames), "unknown storage layout");
  return kStorageLayoutNames[index];
}

std::span<const std::string_view> storage_layout_names() {
  return kStorageLayoutNames;
}

storage::storage_layout storage_layout_by_name(std::string_view name) {
  const std::optional<storage::storage_layout> layout =
      parse_storage_layout_name(name);
  expects(layout.has_value(),
          "unknown storage-layout name (flat | page)");
  return *layout;
}

sim::device_profile storage_profile_by_name(std::string_view name) {
  if (name == "hdd") {
    return sim::hdd_paper();
  }
  if (name == "hdd-raw") {
    return sim::hdd_7200_raw();
  }
  if (name == "ssd") {
    return sim::ssd_sata();
  }
  if (name == "nvme") {
    return sim::nvme();
  }
  if (name == "net-remote") {
    return sim::net_remote();
  }
  if (name == "dram") {
    return sim::dram_ddr4();
  }
  expects(false,
          "unknown storage profile (hdd | hdd-raw | ssd | nvme | "
          "net-remote | dram)");
  return sim::hdd_paper();
}

std::unique_ptr<oram_backend> make_backend(
    backend_kind kind, const horam_config& config,
    sim::block_device& device, const sim::cpu_model& cpu,
    util::random_source& rng, oram::access_trace* trace,
    const std::function<void(oram::block_id, std::span<std::uint8_t>)>*
        filler,
    sim::block_device* map_device) {
  switch (kind) {
    case backend_kind::partitioned:
      return std::make_unique<storage_layer>(config, device, cpu, rng,
                                             trace, filler);
    case backend_kind::sqrt:
      return std::make_unique<oram::sqrt_backend>(config, device, cpu, rng,
                                                  trace, filler);
    case backend_kind::partition:
      return std::make_unique<oram::partition_backend>(config, device, cpu,
                                                       rng, trace, filler);
    case backend_kind::path:
      return std::make_unique<oram::path_backend>(config, device, cpu, rng,
                                                  trace, filler, map_device);
    case backend_kind::ring:
      return std::make_unique<oram::ring_backend>(config, device, cpu, rng,
                                                  trace, filler, map_device);
    case backend_kind::hier:
      return std::make_unique<oram::hier_backend>(config, device, cpu, rng,
                                                  trace, filler, map_device);
  }
  expects(false, "unknown backend kind");
  return nullptr;
}

/// Everything a client owns: the CPU model and the sharded engine,
/// which in turn owns every shard's device lane, RNG, trace, backend
/// and controller.
struct client::machine_state {
  sim::cpu_model cpu;
  std::unique_ptr<engine> eng;

  explicit machine_state(const sim::cpu_profile& cpu_profile)
      : cpu(cpu_profile) {}
};

client::client(std::unique_ptr<machine_state> state, backend_kind kind)
    : state_(std::move(state)), kind_(kind) {}

// Defined here, where machine_state is complete.
client::client(client&&) noexcept = default;
client& client::operator=(client&&) noexcept = default;
client::~client() = default;

std::vector<std::uint8_t> client::read(oram::block_id id) {
  std::vector<request> batch(1);
  batch[0].op = oram::op_kind::read;
  batch[0].id = id;
  std::vector<request_result> results;
  state_->eng->run(batch, &results);
  return std::move(results[0].read_data);
}

void client::write(oram::block_id id, std::span<const std::uint8_t> data) {
  std::vector<request> batch(1);
  batch[0].op = oram::op_kind::write;
  batch[0].id = id;
  batch[0].write_data.assign(data.begin(), data.end());
  state_->eng->run(batch, nullptr);
}

void client::run(std::span<const request> requests,
                 std::vector<request_result>* results) {
  state_->eng->run(requests, results);
}

void client::submit(request req) {
  (void)state_->eng->submit(std::move(req));
}

void client::submit(std::span<const request> requests) {
  // Validate the whole batch before queueing so a bad id cannot leave a
  // partial prefix in the session queue.
  for (const request& req : requests) {
    expects(req.id < config().block_count, "request id out of range");
  }
  for (const request& req : requests) {
    (void)state_->eng->submit(req);
  }
}

std::size_t client::pending() const noexcept {
  return state_->eng->pending();
}

void client::drain(std::vector<request_result>* results) {
  state_->eng->drain(results);
}

const controller_stats& client::stats() const noexcept {
  return state_->eng->stats();
}

void client::reset_stats() noexcept { state_->eng->reset_stats(); }

sim::sim_time client::now() const noexcept { return state_->eng->now(); }

const horam_config& client::config() const noexcept {
  return state_->eng->config();
}

const oram_backend& client::backend() const noexcept {
  return state_->eng->shard(0).backend();
}

const oram::access_trace* client::trace() const noexcept {
  return state_->eng->shard_trace(0);
}

sim::block_device& client::storage_device() noexcept {
  return state_->eng->shard_storage(0);
}

sim::block_device& client::memory_device() noexcept {
  return state_->eng->shard_memory(0);
}

std::uint64_t client::control_memory_bytes() const {
  return state_->eng->control_memory_bytes();
}

engine& client::eng() noexcept { return *state_->eng; }

const engine& client::eng() const noexcept { return *state_->eng; }

controller& client::ctrl() noexcept { return state_->eng->shard(0); }

const controller& client::ctrl() const noexcept {
  return state_->eng->shard(0);
}

client_builder& client_builder::blocks(std::uint64_t n) {
  config_.block_count = n;
  return *this;
}

client_builder& client_builder::memory_blocks(std::uint64_t n) {
  config_.memory_blocks = n;
  cache_ratio_ = 0.0;
  return *this;
}

client_builder& client_builder::cache_ratio(double ratio) {
  expects(ratio > 0.0 && ratio < 1.0, "cache ratio must be in (0, 1)");
  cache_ratio_ = ratio;
  return *this;
}

client_builder& client_builder::payload_bytes(std::size_t bytes) {
  config_.payload_bytes = bytes;
  return *this;
}

client_builder& client_builder::logical_block_bytes(std::uint64_t bytes) {
  config_.logical_block_bytes = bytes;
  return *this;
}

client_builder& client_builder::bucket_size(std::uint32_t z) {
  config_.bucket_size = z;
  return *this;
}

client_builder& client_builder::backend(backend_kind kind) {
  kind_ = kind;
  return *this;
}

client_builder& client_builder::backend(std::string_view name) {
  const std::optional<backend_kind> kind = parse_backend_name(name);
  expects(kind.has_value(),
          "client_builder: backend() got an unknown name "
          "(partitioned | sqrt | partition | path | ring)");
  kind_ = *kind;
  return *this;
}

client_builder& client_builder::ring_bucket_size(std::uint32_t z) {
  expects(z >= 1, "client_builder: ring_bucket_size() must be >= 1");
  config_.ring_bucket_size = z;
  return *this;
}

client_builder& client_builder::ring_spare_slots(std::uint32_t s) {
  expects(s >= 1, "client_builder: ring_spare_slots() must be >= 1");
  config_.ring_spare_slots = s;
  return *this;
}

client_builder& client_builder::ring_eviction_rate(std::uint32_t a) {
  expects(a >= 1, "client_builder: ring_eviction_rate() must be >= 1");
  config_.ring_eviction_rate = a;
  return *this;
}

client_builder& client_builder::ring_xor(bool enabled) {
  config_.ring_xor = enabled;
  return *this;
}

client_builder& client_builder::ring_xor(std::string_view name) {
  if (name == "on" || name == "true") {
    config_.ring_xor = true;
  } else if (name == "off" || name == "false") {
    config_.ring_xor = false;
  } else {
    expects(false,
            "client_builder: ring_xor() got an unknown name "
            "(on | off | true | false)");
  }
  return *this;
}

client_builder& client_builder::hier_fanout(std::uint32_t g) {
  expects(g >= 2, "client_builder: hier_fanout() must be >= 2");
  config_.hier_fanout = g;
  return *this;
}

client_builder& client_builder::hier_rebuild_rate(double rate) {
  expects(rate > 0.0,
          "client_builder: hier_rebuild_rate() must be positive");
  config_.hier_rebuild_rate = rate;
  return *this;
}

client_builder& client_builder::hier_index_bits(std::uint32_t bits) {
  expects(bits <= 64,
          "client_builder: hier_index_bits() packs into 64-bit words");
  config_.hier_index_bits = bits;
  return *this;
}

client_builder& client_builder::map_on_storage(bool enabled) {
  config_.map_on_storage = enabled;
  return *this;
}

client_builder& client_builder::map_on_storage(std::string_view name) {
  if (name == "on" || name == "true") {
    config_.map_on_storage = true;
  } else if (name == "off" || name == "false") {
    config_.map_on_storage = false;
  } else {
    expects(false,
            "client_builder: map_on_storage() got an unknown name "
            "(on | off | true | false)");
  }
  return *this;
}

client_builder& client_builder::shards(std::uint32_t count) {
  config_.shard_count = count;
  return *this;
}

client_builder& client_builder::runtime(runtime_policy policy) {
  config_.runtime = policy;
  return *this;
}

client_builder& client_builder::runtime(std::string_view name) {
  const std::optional<runtime_policy> policy =
      parse_runtime_policy_name(name);
  expects(policy.has_value(),
          "client_builder: runtime() got an unknown policy name "
          "(sim | threaded)");
  config_.runtime = *policy;
  return *this;
}

client_builder& client_builder::coalescing(bool enabled) {
  config_.coalescing = enabled;
  return *this;
}

client_builder& client_builder::coalescing(std::string_view name) {
  if (name == "on" || name == "true") {
    config_.coalescing = true;
  } else if (name == "off" || name == "false") {
    config_.coalescing = false;
  } else {
    expects(false,
            "client_builder: coalescing() got an unknown name "
            "(on | off | true | false)");
  }
  return *this;
}

client_builder& client_builder::layout(storage::storage_layout layout) {
  config_.layout = layout;
  return *this;
}

client_builder& client_builder::layout(std::string_view name) {
  const std::optional<storage::storage_layout> layout =
      parse_storage_layout_name(name);
  expects(layout.has_value(),
          "client_builder: layout() got an unknown name (flat | page)");
  config_.layout = *layout;
  return *this;
}

client_builder& client_builder::page_bytes(std::uint64_t bytes) {
  expects(bytes > 0, "client_builder: page_bytes() must be positive");
  config_.page_bytes = bytes;
  return *this;
}

client_builder& client_builder::threads(std::uint32_t n) {
  expects(n >= 1,
          "client_builder: threads() must be at least 1 — select "
          "runtime(runtime_policy::sim) to stay single-threaded");
  config_.worker_threads = n;
  config_.runtime = runtime_policy::threaded;
  return *this;
}

client_builder& client_builder::storage_profile(
    const sim::device_profile& profile) {
  storage_profile_ = profile;
  return *this;
}

client_builder& client_builder::storage_profile(std::string_view name) {
  storage_profile_ = storage_profile_by_name(name);
  return *this;
}

client_builder& client_builder::memory_profile(
    const sim::device_profile& profile) {
  memory_profile_ = profile;
  return *this;
}

client_builder& client_builder::cpu(const sim::cpu_profile& profile) {
  cpu_profile_ = profile;
  return *this;
}

client_builder& client_builder::shuffle(shuffle_policy policy) {
  config_.shuffle = policy;
  return *this;
}

client_builder& client_builder::shuffle(std::string_view name) {
  const std::optional<shuffle_policy> policy =
      parse_shuffle_policy_name(name);
  expects(policy.has_value(),
          "client_builder: shuffle() got an unknown policy name "
          "(foreground | async-writeback | offloaded | incremental)");
  config_.shuffle = *policy;
  return *this;
}

client_builder& client_builder::shuffle_slice_budget(sim::sim_time budget) {
  expects(budget >= 0,
          "client_builder: shuffle_slice_budget() cannot be negative");
  config_.shuffle_slice_budget = budget;
  return *this;
}

client_builder& client_builder::shuffle_every(std::uint32_t periods) {
  config_.shuffle_every_periods = periods;
  return *this;
}

client_builder& client_builder::stages(
    std::vector<scheduler_stage> stages) {
  config_.stages = std::move(stages);
  return *this;
}

client_builder& client_builder::seal(bool on) {
  config_.seal = on;
  return *this;
}

client_builder& client_builder::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

client_builder& client_builder::trace(bool on) {
  trace_ = on;
  return *this;
}

client_builder& client_builder::filler(
    std::function<void(oram::block_id, std::span<std::uint8_t>)> fill) {
  filler_ = std::move(fill);
  return *this;
}

client_builder& client_builder::config_tweak(
    std::function<void(horam_config&)> tweak) {
  tweak_ = std::move(tweak);
  return *this;
}

client_builder& client_builder::fairness(fairness_kind kind) {
  service_.policy = kind;
  service_.custom_policy = nullptr;
  return *this;
}

client_builder& client_builder::fairness(std::string_view name) {
  return fairness(fairness_by_name(name));
}

client_builder& client_builder::fairness(
    std::function<std::unique_ptr<fairness_policy>()> factory) {
  expects(factory != nullptr, "fairness factory must not be null");
  service_.custom_policy = std::move(factory);
  return *this;
}

client_builder& client_builder::max_queue_depth(std::size_t depth) {
  service_.max_queue_depth = depth;
  return *this;
}

client client_builder::build() const {
  horam_config config = config_;
  if (cache_ratio_ > 0.0) {
    const auto derived = static_cast<std::uint64_t>(
        cache_ratio_ * static_cast<double>(config.block_count));
    // ratio < 1 keeps memory below the dataset; floor at one bucket pair.
    config.memory_blocks =
        std::max<std::uint64_t>(derived, 2 * config.bucket_size);
  }
  if (tweak_) {
    tweak_(config);
  }
  // Per-setter diagnostics before the generic config validation, so an
  // incomplete builder names the call that is missing rather than the
  // derived invariant it broke.
  expects(config.block_count > 0, "client_builder: blocks() not set");
  expects(config.payload_bytes > 0,
          "client_builder: payload_bytes() not set");
  expects(config.memory_blocks > 0,
          "client_builder: memory_blocks() or cache_ratio() not set");
  expects(config.memory_blocks >= 2 * config.bucket_size,
          "client_builder: memory_blocks() must hold at least one bucket "
          "pair (2 * bucket_size())");
  expects(config.memory_blocks / 2 < config.block_count,
          "client_builder: memory_blocks() must be well below blocks() — "
          "memory as large as the dataset needs no storage layer");
  expects(config.shard_count >= 1,
          "client_builder: shards() must be at least 1");
  if (config.shard_count > 1) {
    expects(config.shard_count <= config.block_count,
            "client_builder: shards() exceeds blocks() — a shard would "
            "own no blocks");
    expects(config.memory_blocks / config.shard_count >=
                2 * config.bucket_size,
            "client_builder: shards() splits memory_blocks() below one "
            "bucket pair (2 * bucket_size()) per shard — lower shards() "
            "or raise memory_blocks()");
  }
  config.validate();

  auto state = std::make_unique<client::machine_state>(cpu_profile_);

  engine::options opts;
  opts.storage_profile = storage_profile_;
  opts.memory_profile = memory_profile_;
  opts.seed = seed_;
  opts.trace = trace_;

  // Per-shard backend factory: each shard gets its own store over its
  // own device lane; the filler is rebased from shard-local to global
  // ids (identity for a single shard, so the historical construction
  // path is untouched).
  const backend_kind kind = kind_;
  const auto& filler = filler_;
  const engine::shard_factory factory =
      [kind, &filler](std::uint32_t /*shard_index*/,
                      const horam_config& shard_config,
                      sim::block_device& storage, sim::block_device& memory,
                      const sim::cpu_model& cpu, util::random_source& rng,
                      oram::access_trace* trace,
                      std::span<const oram::block_id> shard_blocks) {
        std::function<void(oram::block_id, std::span<std::uint8_t>)>
            rebased;
        const std::function<void(oram::block_id, std::span<std::uint8_t>)>*
            fill_ptr = nullptr;
        if (filler) {
          if (shard_blocks.empty()) {
            fill_ptr = &filler;
          } else {
            rebased = [&filler, shard_blocks](
                          oram::block_id local,
                          std::span<std::uint8_t> out) {
              filler(shard_blocks[local], out);
            };
            fill_ptr = &rebased;
          }
        }
        // map_on_storage puts the tree backends' recursive map chain on
        // the storage lane (the honest client/server wiring, one
        // dependent storage round trip per map level); off keeps the
        // historical map-on-memory machine bit for bit.
        return make_backend(kind, shard_config, storage, cpu, rng, trace,
                            fill_ptr,
                            shard_config.map_on_storage ? &storage : &memory);
      };
  state->eng = std::make_unique<engine>(config, state->cpu, factory, opts);
  return client(std::move(state), kind_);
}

service client_builder::build_service() const {
  return service(build(), service_);
}

// ------------------------------------------------------- service layer

/// Completion slot one ticket points at. The owning impl is held weakly
/// so dropping every service/session handle while requests are in
/// flight cannot leak the machine through a reference cycle.
struct ticket::state {
  std::uint64_t seq = 0;
  std::uint32_t tenant = 0;
  bool done = false;
  ticket_result result;
  std::weak_ptr<service::impl> owner;
};

struct service::impl {
  client oram;
  tenant_scheduler sched;
  /// Tickets awaiting completion, by sequence number.
  std::unordered_map<std::uint64_t, std::shared_ptr<ticket::state>>
      inflight;

  impl(client&& machine, service_config config)
      : oram(std::move(machine)),
        // The engine lives on the heap behind machine_state, so the
        // reference stays valid across the client move above.
        sched(oram.eng(),
              config.custom_policy
                  ? config.custom_policy()
                  : make_fairness_policy(config.policy),
              config.max_queue_depth) {}

  bool step() {
    return sched.step([this](std::uint32_t /*tenant*/, std::uint64_t seq,
                             request_result&& result,
                             sim::sim_time latency) {
      const auto it = inflight.find(seq);
      invariant(it != inflight.end(), "completion for unknown ticket");
      ticket::state& slot = *it->second;
      slot.result.payload = std::move(result.read_data);
      slot.result.latency = latency;
      slot.result.sim_time = result.completion_time;
      slot.result.hit = result.hit;
      slot.done = true;
      inflight.erase(it);
    });
  }
};

service::service(client&& oram, service_config config)
    : impl_(std::make_shared<impl>(std::move(oram), std::move(config))) {}

session service::open_session(double weight) {
  const std::uint32_t tenant = impl_->sched.add_tenant(weight);
  return session(impl_, tenant);
}

void service::grant(std::uint32_t tenant, user_grant grant) {
  impl_->sched.grant(tenant, grant);
}

bool service::step() { return impl_->step(); }

void service::run_until_idle() {
  while (impl_->step()) {
  }
}

bool service::idle() const { return impl_->sched.idle(); }

std::size_t service::pending() const { return impl_->sched.queued(); }

tenant_stats service::tenant_stats(std::uint32_t tenant) const {
  return impl_->sched.stats(tenant);
}

std::size_t service::tenant_count() const {
  return impl_->sched.tenant_count();
}

void service::reset_stats() {
  impl_->sched.reset_stats();
  impl_->oram.reset_stats();
}

const controller_stats& service::stats() const noexcept {
  return impl_->oram.stats();
}

sim::sim_time service::now() const noexcept { return impl_->oram.now(); }

const horam_config& service::config() const noexcept {
  return impl_->oram.config();
}

std::string_view service::policy_name() const {
  return impl_->sched.policy().name();
}

client& service::underlying() noexcept { return impl_->oram; }

const client& service::underlying() const noexcept { return impl_->oram; }

ticket session::admit(request req) {
  auto slot = std::make_shared<ticket::state>();
  slot->tenant = tenant_;
  slot->owner = impl_;
  // enqueue() throws (access_denied / queue_overflow / contract_error)
  // before queueing, in which case no ticket escapes.
  slot->seq = impl_->sched.enqueue(tenant_, std::move(req));
  impl_->inflight.emplace(slot->seq, slot);
  return ticket(std::move(slot));
}

ticket session::async_read(oram::block_id id) {
  request req;
  req.op = oram::op_kind::read;
  req.id = id;
  return admit(std::move(req));
}

ticket session::async_write(oram::block_id id,
                            std::span<const std::uint8_t> data) {
  request req;
  req.op = oram::op_kind::write;
  req.id = id;
  req.write_data.assign(data.begin(), data.end());
  return admit(std::move(req));
}

std::size_t session::pending() const {
  return impl_->sched.queued(tenant_);
}

tenant_stats session::stats() const { return impl_->sched.stats(tenant_); }

std::uint64_t ticket::id() const {
  expects(state_ != nullptr, "empty ticket");
  return state_->seq;
}

std::uint32_t ticket::tenant() const {
  expects(state_ != nullptr, "empty ticket");
  return state_->tenant;
}

bool ticket::ready() const noexcept {
  return state_ != nullptr && state_->done;
}

const ticket_result& ticket::result() {
  expects(state_ != nullptr, "empty ticket");
  while (!state_->done) {
    const std::shared_ptr<service::impl> impl = state_->owner.lock();
    expects(impl != nullptr, "ticket outlived its service");
    invariant(impl->step(), "service idle with an unfinished ticket");
  }
  return state_->result;
}

}  // namespace horam
