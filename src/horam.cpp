#include "horam.h"

#include <algorithm>

#include "util/contracts.h"

namespace horam {

std::string_view backend_name(backend_kind kind) {
  switch (kind) {
    case backend_kind::partitioned: return "partitioned";
    case backend_kind::sqrt: return "sqrt";
    case backend_kind::partition: return "partition";
  }
  return "?";
}

backend_kind backend_by_name(std::string_view name) {
  if (name == "partitioned" || name == "horam") {
    return backend_kind::partitioned;
  }
  if (name == "sqrt") {
    return backend_kind::sqrt;
  }
  if (name == "partition") {
    return backend_kind::partition;
  }
  expects(false, "unknown backend name (partitioned | sqrt | partition)");
  return backend_kind::partitioned;
}

sim::device_profile storage_profile_by_name(std::string_view name) {
  if (name == "hdd") {
    return sim::hdd_paper();
  }
  if (name == "hdd-raw") {
    return sim::hdd_7200_raw();
  }
  if (name == "ssd") {
    return sim::ssd_sata();
  }
  if (name == "nvme") {
    return sim::nvme();
  }
  expects(false, "unknown storage profile (hdd | hdd-raw | ssd | nvme)");
  return sim::hdd_paper();
}

std::unique_ptr<oram_backend> make_backend(
    backend_kind kind, const horam_config& config,
    sim::block_device& device, const sim::cpu_model& cpu,
    util::random_source& rng, oram::access_trace* trace,
    const std::function<void(oram::block_id, std::span<std::uint8_t>)>*
        filler) {
  switch (kind) {
    case backend_kind::partitioned:
      return std::make_unique<storage_layer>(config, device, cpu, rng,
                                             trace, filler);
    case backend_kind::sqrt:
      return std::make_unique<oram::sqrt_backend>(config, device, cpu, rng,
                                                  trace, filler);
    case backend_kind::partition:
      return std::make_unique<oram::partition_backend>(config, device, cpu,
                                                       rng, trace, filler);
  }
  expects(false, "unknown backend kind");
  return nullptr;
}

/// Everything a client owns, constructed in dependency order.
struct client::machine_state {
  sim::block_device storage;
  sim::block_device memory;
  sim::cpu_model cpu;
  util::pcg64 rng;
  std::optional<oram::access_trace> trace;
  std::unique_ptr<controller> ctrl;

  machine_state(const sim::device_profile& storage_profile,
                const sim::device_profile& memory_profile,
                const sim::cpu_profile& cpu_profile, std::uint64_t seed,
                bool with_trace)
      : storage(storage_profile),
        memory(memory_profile),
        cpu(cpu_profile),
        rng(seed) {
    if (with_trace) {
      trace.emplace();
    }
  }
};

client::client(std::unique_ptr<machine_state> state, backend_kind kind)
    : state_(std::move(state)), kind_(kind) {}

// Defined here, where machine_state is complete.
client::client(client&&) noexcept = default;
client& client::operator=(client&&) noexcept = default;
client::~client() = default;

std::vector<std::uint8_t> client::read(oram::block_id id) {
  return state_->ctrl->read(id);
}

void client::write(oram::block_id id, std::span<const std::uint8_t> data) {
  state_->ctrl->write(id, data);
}

void client::run(std::span<const request> requests,
                 std::vector<request_result>* results) {
  state_->ctrl->run(requests, results);
}

void client::submit(request req) { state_->ctrl->submit(std::move(req)); }

void client::submit(std::span<const request> requests) {
  state_->ctrl->submit(requests);
}

std::size_t client::pending() const noexcept {
  return state_->ctrl->pending();
}

void client::drain(std::vector<request_result>* results) {
  state_->ctrl->drain(results);
}

const controller_stats& client::stats() const noexcept {
  return state_->ctrl->stats();
}

sim::sim_time client::now() const noexcept { return state_->ctrl->now(); }

const horam_config& client::config() const noexcept {
  return state_->ctrl->config();
}

const oram_backend& client::backend() const noexcept {
  return state_->ctrl->backend();
}

const oram::access_trace* client::trace() const noexcept {
  return state_->trace.has_value() ? &*state_->trace : nullptr;
}

sim::block_device& client::storage_device() noexcept {
  return state_->storage;
}

sim::block_device& client::memory_device() noexcept {
  return state_->memory;
}

std::uint64_t client::control_memory_bytes() const {
  return state_->ctrl->control_memory_bytes();
}

controller& client::ctrl() noexcept { return *state_->ctrl; }

const controller& client::ctrl() const noexcept { return *state_->ctrl; }

client_builder& client_builder::blocks(std::uint64_t n) {
  config_.block_count = n;
  return *this;
}

client_builder& client_builder::memory_blocks(std::uint64_t n) {
  config_.memory_blocks = n;
  cache_ratio_ = 0.0;
  return *this;
}

client_builder& client_builder::cache_ratio(double ratio) {
  expects(ratio > 0.0 && ratio < 1.0, "cache ratio must be in (0, 1)");
  cache_ratio_ = ratio;
  return *this;
}

client_builder& client_builder::payload_bytes(std::size_t bytes) {
  config_.payload_bytes = bytes;
  return *this;
}

client_builder& client_builder::logical_block_bytes(std::uint64_t bytes) {
  config_.logical_block_bytes = bytes;
  return *this;
}

client_builder& client_builder::bucket_size(std::uint32_t z) {
  config_.bucket_size = z;
  return *this;
}

client_builder& client_builder::backend(backend_kind kind) {
  kind_ = kind;
  return *this;
}

client_builder& client_builder::storage_profile(
    const sim::device_profile& profile) {
  storage_profile_ = profile;
  return *this;
}

client_builder& client_builder::storage_profile(std::string_view name) {
  storage_profile_ = storage_profile_by_name(name);
  return *this;
}

client_builder& client_builder::memory_profile(
    const sim::device_profile& profile) {
  memory_profile_ = profile;
  return *this;
}

client_builder& client_builder::cpu(const sim::cpu_profile& profile) {
  cpu_profile_ = profile;
  return *this;
}

client_builder& client_builder::shuffle(shuffle_policy policy) {
  config_.shuffle = policy;
  return *this;
}

client_builder& client_builder::shuffle_every(std::uint32_t periods) {
  config_.shuffle_every_periods = periods;
  return *this;
}

client_builder& client_builder::stages(
    std::vector<scheduler_stage> stages) {
  config_.stages = std::move(stages);
  return *this;
}

client_builder& client_builder::seal(bool on) {
  config_.seal = on;
  return *this;
}

client_builder& client_builder::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

client_builder& client_builder::trace(bool on) {
  trace_ = on;
  return *this;
}

client_builder& client_builder::filler(
    std::function<void(oram::block_id, std::span<std::uint8_t>)> fill) {
  filler_ = std::move(fill);
  return *this;
}

client_builder& client_builder::config_tweak(
    std::function<void(horam_config&)> tweak) {
  tweak_ = std::move(tweak);
  return *this;
}

client client_builder::build() const {
  horam_config config = config_;
  if (cache_ratio_ > 0.0) {
    const auto derived = static_cast<std::uint64_t>(
        cache_ratio_ * static_cast<double>(config.block_count));
    // ratio < 1 keeps memory below the dataset; floor at one bucket pair.
    config.memory_blocks =
        std::max<std::uint64_t>(derived, 2 * config.bucket_size);
  }
  if (tweak_) {
    tweak_(config);
  }
  config.validate();

  auto state = std::make_unique<client::machine_state>(
      storage_profile_, memory_profile_, cpu_profile_, seed_, trace_);
  oram::access_trace* trace_ptr =
      state->trace.has_value() ? &*state->trace : nullptr;
  const std::function<void(oram::block_id, std::span<std::uint8_t>)>*
      filler_ptr = filler_ ? &filler_ : nullptr;

  std::unique_ptr<oram_backend> backend =
      make_backend(kind_, config, state->storage, state->cpu, state->rng,
                   trace_ptr, filler_ptr);
  state->ctrl = std::make_unique<controller>(config, std::move(backend),
                                             state->memory, state->cpu,
                                             state->rng, trace_ptr);
  return client(std::move(state), kind_);
}

}  // namespace horam
