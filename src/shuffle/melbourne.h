// Melbourne shuffle (Ohrimenko, Goodrich, Tamassia, Upfal) — the
// external-memory oblivious shuffle the paper cites ([9]/[10] in the
// thesis) as the expensive machinery H-ORAM's partition shuffle avoids.
//
// Simplified two-phase variant with the canonical structure:
//   distribute: stream the input in ~sqrt(n) batches; each batch writes
//     one fixed-size message per bucket (padded with dummies), so the
//     write pattern is independent of the permutation;
//   clean: stream each bucket's messages, drop dummies, order by
//     destination in client memory (O(sqrt(n) * quota) records), emit
//     output sequentially.
// If any (batch, bucket) message overflows its quota the whole shuffle
// retries with fresh randomness (probability falls geometrically with
// the quota; the default keeps it negligible for n up to 2^24).
//
// The I/O volume is (1 + quota) * n reads plus (1 + quota) * n writes in
// record units — the "several passes over the whole dataset" cost that
// motivates H-ORAM's sequential group-and-partition shuffle.
#ifndef HORAM_SHUFFLE_MELBOURNE_H
#define HORAM_SHUFFLE_MELBOURNE_H

#include "shuffle/shuffle.h"
#include "sim/time.h"
#include "storage/block_store.h"

namespace horam::shuffle {

/// Tuning knobs for the Melbourne shuffle.
struct melbourne_config {
  /// Per-(batch, bucket) message capacity in records, including dummies.
  std::uint64_t message_quota = 10;
  /// Abort after this many overflow retries (indicates a mis-sized quota).
  std::uint64_t max_retries = 32;
};

/// Outcome of an external shuffle.
struct external_shuffle_result {
  /// Permutation applied: input slot i ended at output slot pi[i].
  permutation pi;
  /// Virtual device time spent.
  sim::sim_time io_time = 0;
  /// Work counters (touch_ops counts records moved through phases).
  shuffle_stats stats;
};

/// Scratch records required for n input records under `config`
/// (callers size their scratch store with this).
[[nodiscard]] std::uint64_t melbourne_scratch_records(
    std::uint64_t n, const melbourne_config& config);

/// Obliviously shuffles all records of `input` into `output` through
/// `scratch`. The stores must share record size; scratch must hold at
/// least melbourne_scratch_records(n) records. Throws on quota
/// exhaustion after max_retries.
external_shuffle_result melbourne_shuffle(storage::block_store& input,
                                          storage::block_store& scratch,
                                          storage::block_store& output,
                                          util::random_source& rng,
                                          const melbourne_config& config = {});

}  // namespace horam::shuffle

#endif  // HORAM_SHUFFLE_MELBOURNE_H
