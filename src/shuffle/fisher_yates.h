// Fisher-Yates: the non-oblivious in-memory baseline shuffle.
// Uniform given an unbiased random source; O(n) swaps; the access
// pattern reveals the permutation, so it may only run inside the trusted
// control layer (which is exactly how H-ORAM uses in-memory shuffles).
#ifndef HORAM_SHUFFLE_FISHER_YATES_H
#define HORAM_SHUFFLE_FISHER_YATES_H

#include "shuffle/shuffle.h"

namespace horam::shuffle {

/// Shuffles `records` in place; returns the permutation applied
/// (pi[i] = final position of the record initially at i).
permutation fisher_yates(util::random_source& rng,
                         std::span<std::uint8_t> records,
                         std::size_t record_bytes,
                         shuffle_stats* stats = nullptr);

}  // namespace horam::shuffle

#endif  // HORAM_SHUFFLE_FISHER_YATES_H
