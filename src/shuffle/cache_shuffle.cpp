#include "shuffle/cache_shuffle.h"

#include "shuffle/fisher_yates.h"

#include <algorithm>
#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::shuffle {

namespace {

struct layout {
  std::uint64_t buckets = 0;
  std::uint64_t bucket_capacity = 0;
};

layout plan(std::uint64_t n, const cache_shuffle_config& config) {
  layout l;
  l.buckets = std::max<std::uint64_t>(
      1, util::ceil_div(2 * n, config.client_memory_records));
  l.bucket_capacity = static_cast<std::uint64_t>(
      config.bucket_slack *
          static_cast<double>(util::ceil_div(n, l.buckets)) +
      1.0);
  return l;
}

}  // namespace

std::uint64_t cache_shuffle_scratch_records(
    std::uint64_t n, const cache_shuffle_config& config) {
  const layout l = plan(n, config);
  return l.buckets * l.bucket_capacity;
}

external_shuffle_result cache_shuffle(storage::block_store& input,
                                      storage::block_store& scratch,
                                      storage::block_store& output,
                                      util::random_source& rng,
                                      const cache_shuffle_config& config) {
  const std::uint64_t n = input.slot_count();
  const std::size_t record_bytes = input.record_bytes();
  expects(scratch.record_bytes() == record_bytes &&
              output.record_bytes() == record_bytes,
          "stores must agree on record size");
  expects(output.slot_count() >= n, "output store too small");
  expects(config.client_memory_records >= 2, "client memory too small");
  expects(scratch.slot_count() >= cache_shuffle_scratch_records(n, config),
          "scratch store too small");

  const layout l = plan(n, config);
  const std::uint64_t chunk_records =
      std::min<std::uint64_t>(config.client_memory_records, n);

  external_shuffle_result result;
  for (std::uint64_t attempt = 0;; ++attempt) {
    if (attempt >= config.max_retries) {
      throw std::runtime_error(
          "cache shuffle: bucket overflowed repeatedly; increase "
          "cache_shuffle_config::bucket_slack");
    }

    // origin[slot in scratch] = input slot held there (client metadata —
    // a deployment seals this inside the record).
    std::vector<std::uint64_t> origin(scratch.slot_count(), 0);
    std::vector<std::uint64_t> fill(l.buckets, 0);
    bool overflow = false;

    // Spray pass: stream the input; buffer per-bucket appends within the
    // client chunk, flush each bucket's new records with one write.
    std::vector<std::uint8_t> chunk(chunk_records * record_bytes);
    std::vector<std::vector<std::uint8_t>> pending(l.buckets);
    std::vector<std::vector<std::uint64_t>> pending_origin(l.buckets);
    for (std::uint64_t first = 0; first < n && !overflow;
         first += chunk_records) {
      const std::uint64_t count = std::min(chunk_records, n - first);
      result.io_time += input.read_range(first, count, chunk);
      result.stats.touch_ops += count;
      result.stats.bytes_moved += count * record_bytes;

      for (auto& p : pending) {
        p.clear();
      }
      for (auto& p : pending_origin) {
        p.clear();
      }
      for (std::uint64_t k = 0; k < count; ++k) {
        const std::uint64_t bucket = util::uniform_below(rng, l.buckets);
        const std::uint8_t* const rec = chunk.data() + k * record_bytes;
        pending[bucket].insert(pending[bucket].end(), rec,
                               rec + record_bytes);
        pending_origin[bucket].push_back(first + k);
      }
      for (std::uint64_t b = 0; b < l.buckets && !overflow; ++b) {
        const std::uint64_t added = pending_origin[b].size();
        if (added == 0) {
          continue;
        }
        if (fill[b] + added > l.bucket_capacity) {
          overflow = true;
          break;
        }
        const std::uint64_t base = b * l.bucket_capacity + fill[b];
        result.io_time += scratch.write_range(base, added, pending[b]);
        result.stats.bytes_moved += added * record_bytes;
        for (std::uint64_t k = 0; k < added; ++k) {
          origin[base + k] = pending_origin[b][k];
        }
        fill[b] += added;
      }
    }
    if (overflow) {
      ++result.stats.retries;
      result.io_time = 0;
      continue;
    }

    // Clean pass: load each bucket, shuffle it in client memory, emit.
    result.pi.assign(n, 0);
    std::uint64_t out_position = 0;
    std::vector<std::uint8_t> bucket_data;
    for (std::uint64_t b = 0; b < l.buckets; ++b) {
      const std::uint64_t used = fill[b];
      if (used == 0) {
        continue;
      }
      bucket_data.resize(used * record_bytes);
      result.io_time +=
          scratch.read_range(b * l.bucket_capacity, used, bucket_data);
      result.stats.bytes_moved += used * record_bytes;

      const permutation local = fisher_yates(
          rng, std::span<std::uint8_t>(bucket_data), record_bytes);
      for (std::uint64_t k = 0; k < used; ++k) {
        const std::uint64_t slot = b * l.bucket_capacity + k;
        result.pi[origin[slot]] = out_position + local[k];
      }
      result.io_time +=
          output.write_range(out_position, used, bucket_data);
      result.stats.touch_ops += used;
      result.stats.bytes_moved += used * record_bytes;
      out_position += used;
    }
    invariant(out_position == n, "clean pass lost records");
    return result;
  }
}

}  // namespace horam::shuffle
