#include "shuffle/melbourne.h"

#include <algorithm>
#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::shuffle {

namespace {

struct layout {
  std::uint64_t n = 0;
  std::uint64_t buckets = 0;      // B ~ sqrt(n)
  std::uint64_t batches = 0;      // R = ceil(n / B)
  std::uint64_t bucket_span = 0;  // output positions per bucket
};

layout plan(std::uint64_t n) {
  layout l;
  l.n = n;
  l.buckets = util::isqrt_ceil(n);
  l.batches = util::ceil_div(n, l.buckets);
  l.bucket_span = util::ceil_div(n, l.buckets);
  return l;
}

}  // namespace

std::uint64_t melbourne_scratch_records(std::uint64_t n,
                                        const melbourne_config& config) {
  const layout l = plan(n);
  return l.batches * l.buckets * config.message_quota;
}

external_shuffle_result melbourne_shuffle(storage::block_store& input,
                                          storage::block_store& scratch,
                                          storage::block_store& output,
                                          util::random_source& rng,
                                          const melbourne_config& config) {
  const std::uint64_t n = input.slot_count();
  const std::size_t record_bytes = input.record_bytes();
  expects(scratch.record_bytes() == record_bytes &&
              output.record_bytes() == record_bytes,
          "stores must agree on record size");
  expects(output.slot_count() >= n, "output store too small");
  expects(scratch.slot_count() >= melbourne_scratch_records(n, config),
          "scratch store too small");
  expects(config.message_quota > 0, "quota must be positive");

  const layout l = plan(n);
  const std::uint64_t q = config.message_quota;

  external_shuffle_result result;
  for (std::uint64_t attempt = 0;; ++attempt) {
    if (attempt >= config.max_retries) {
      throw std::runtime_error(
          "melbourne shuffle: message quota exhausted repeatedly; "
          "increase melbourne_config::message_quota");
    }
    result.pi = util::random_permutation(rng, n);

    // Client-side metadata standing in for the headers a deployment
    // would seal inside each record: which scratch slots hold real
    // records and where they are destined.
    std::vector<std::uint8_t> is_real(scratch.slot_count(), 0);
    std::vector<std::uint64_t> destination(scratch.slot_count(), 0);

    bool overflow = false;

    // Phase 1 — distribute: one sequential stripe write per batch, each
    // stripe holding a fixed-size message per bucket.
    std::vector<std::uint8_t> batch_buffer(l.buckets * record_bytes);
    std::vector<std::uint8_t> stripe(l.buckets * q * record_bytes);
    std::vector<std::uint64_t> fill(l.buckets, 0);
    for (std::uint64_t r = 0; r < l.batches && !overflow; ++r) {
      const std::uint64_t first = r * l.buckets;
      const std::uint64_t count = std::min(l.buckets, n - first);
      result.io_time += input.read_range(first, count, batch_buffer);
      result.stats.touch_ops += count;
      result.stats.bytes_moved += count * record_bytes;

      std::fill(stripe.begin(), stripe.end(), 0);
      std::fill(fill.begin(), fill.end(), 0);
      for (std::uint64_t k = 0; k < count; ++k) {
        const std::uint64_t dest = result.pi[first + k];
        const std::uint64_t bucket = dest / l.bucket_span;
        if (fill[bucket] == q) {
          overflow = true;
          break;
        }
        const std::uint64_t message_slot = bucket * q + fill[bucket];
        std::memcpy(stripe.data() + message_slot * record_bytes,
                    batch_buffer.data() + k * record_bytes, record_bytes);
        const std::uint64_t scratch_slot =
            r * l.buckets * q + message_slot;
        is_real[scratch_slot] = 1;
        destination[scratch_slot] = dest;
        ++fill[bucket];
      }
      if (!overflow) {
        result.io_time +=
            scratch.write_range(r * l.buckets * q, l.buckets * q, stripe);
        result.stats.bytes_moved += l.buckets * q * record_bytes;
      }
    }
    if (overflow) {
      ++result.stats.retries;
      result.io_time = 0;
      continue;
    }

    // Phase 2 — clean: per bucket, gather its messages from every batch
    // (message-granular reads), drop dummies, order by destination in
    // client memory, emit the bucket's output range sequentially.
    std::vector<std::uint8_t> message(q * record_bytes);
    for (std::uint64_t b = 0; b < l.buckets; ++b) {
      const std::uint64_t out_first = b * l.bucket_span;
      if (out_first >= n) {
        break;
      }
      const std::uint64_t out_count = std::min(l.bucket_span, n - out_first);
      std::vector<std::uint8_t> bucket_out(out_count * record_bytes);
      std::uint64_t gathered = 0;
      for (std::uint64_t r = 0; r < l.batches; ++r) {
        const std::uint64_t message_first = r * l.buckets * q + b * q;
        result.io_time += scratch.read_range(message_first, q, message);
        result.stats.bytes_moved += q * record_bytes;
        for (std::uint64_t k = 0; k < q; ++k) {
          const std::uint64_t slot = message_first + k;
          if (is_real[slot] == 0) {
            continue;
          }
          const std::uint64_t dest = destination[slot];
          invariant(dest / l.bucket_span == b,
                    "record landed in the wrong bucket");
          std::memcpy(bucket_out.data() +
                          (dest - out_first) * record_bytes,
                      message.data() + k * record_bytes, record_bytes);
          ++gathered;
        }
      }
      invariant(gathered == out_count, "bucket lost records");
      result.io_time += output.write_range(out_first, out_count, bucket_out);
      result.stats.touch_ops += out_count;
      result.stats.bytes_moved += out_count * record_bytes;
    }
    return result;
  }
}

}  // namespace horam::shuffle
