#include "shuffle/waksman.h"

#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::shuffle {

namespace {

constexpr int kUnassigned = -1;

// Recursively routes `pi` (a permutation on m wires, m a power of two)
// into switches. Wire w of this subnetwork lives at array position
// offset + stride * w of the whole network.
void route(const permutation& pi, std::uint64_t offset, std::uint64_t stride,
           std::vector<waksman_switch>& out) {
  const std::uint64_t m = pi.size();
  if (m <= 1) {
    return;
  }
  const auto position = [&](std::uint64_t wire) {
    return static_cast<std::uint32_t>(offset + stride * wire);
  };
  if (m == 2) {
    out.push_back(waksman_switch{position(0), position(1), pi[0] == 1});
    return;
  }

  const permutation inv = invert(pi);
  const std::uint64_t half = m / 2;

  // in_sub[x]  = subnetwork (0 = top, 1 = bottom) input x routes through.
  // out_sub[o] = subnetwork output o is served from.
  std::vector<int> in_sub(m, kUnassigned);
  std::vector<int> out_sub(m, kUnassigned);

  for (std::uint64_t start = 0; start < m; ++start) {
    if (in_sub[start] != kUnassigned) {
      continue;
    }
    // Free choice at the head of each cycle: route it through the top.
    in_sub[start] = 0;
    std::uint64_t x = start;
    while (true) {
      const std::uint64_t o = pi[x];
      const int s = in_sub[x];
      out_sub[o] = s;
      // Partner output of the same out-switch must come from the other
      // subnetwork, which forces its source input, which forces the
      // partner input of that in-switch, closing the chain.
      const std::uint64_t o_partner = o ^ 1;
      out_sub[o_partner] = 1 - s;
      const std::uint64_t y = inv[o_partner];
      in_sub[y] = 1 - s;
      const std::uint64_t y_partner = y ^ 1;
      if (in_sub[y_partner] != kUnassigned) {
        break;
      }
      in_sub[y_partner] = s;
      x = y_partner;
    }
  }

  // Input layer: in-switch p pairs inputs (2p, 2p+1); crossed iff input
  // 2p routes to the bottom subnetwork.
  for (std::uint64_t p = 0; p < half; ++p) {
    out.push_back(waksman_switch{position(2 * p), position(2 * p + 1),
                                 in_sub[2 * p] == 1});
  }

  // Subnetwork permutations: input x on subnet s enters at wire x/2 and
  // must exit at wire pi[x]/2 of the same subnet.
  permutation top(half);
  permutation bottom(half);
  for (std::uint64_t x = 0; x < m; ++x) {
    if (in_sub[x] == 0) {
      top[x / 2] = pi[x] / 2;
    } else {
      bottom[x / 2] = pi[x] / 2;
    }
  }
  // Top subnet wires sit at even positions, bottom at odd ones.
  route(top, offset, stride * 2, out);
  route(bottom, offset + stride, stride * 2, out);

  // Output layer: out-switch q pairs outputs (2q, 2q+1); crossed iff
  // output 2q is served from the bottom subnetwork.
  for (std::uint64_t q = 0; q < half; ++q) {
    out.push_back(waksman_switch{position(2 * q), position(2 * q + 1),
                                 out_sub[2 * q] == 1});
  }
}

}  // namespace

waksman_network build_waksman(const permutation& pi) {
  expects(is_permutation(pi), "network requires a valid permutation");
  waksman_network network;
  network.size = pi.size();
  if (pi.size() <= 1) {
    network.padded_size = pi.size();
    return network;
  }
  network.padded_size = util::next_pow2(pi.size());

  // Extend with fixed points so padding lanes route straight through.
  permutation padded(network.padded_size);
  for (std::uint64_t i = 0; i < pi.size(); ++i) {
    padded[i] = pi[i];
  }
  for (std::uint64_t i = pi.size(); i < network.padded_size; ++i) {
    padded[i] = i;
  }
  route(padded, /*offset=*/0, /*stride=*/1, network.switches);
  return network;
}

void apply_waksman(const waksman_network& network,
                   std::span<std::uint8_t> records, std::size_t record_bytes,
                   shuffle_stats* stats, const touch_observer& observer) {
  expects(record_bytes > 0, "record size must be positive");
  expects(records.size() == network.size * record_bytes,
          "record buffer must match the network size");

  std::vector<std::uint8_t> lane(network.padded_size * record_bytes, 0);
  std::memcpy(lane.data(), records.data(), records.size());

  std::vector<std::uint8_t> tmp(record_bytes);
  for (const waksman_switch& sw : network.switches) {
    if (observer) {
      observer(sw.a, sw.b);
    }
    if (stats != nullptr) {
      ++stats->touch_ops;
      stats->bytes_moved += 2 * record_bytes;
    }
    if (sw.cross) {
      std::uint8_t* const pa = lane.data() + sw.a * record_bytes;
      std::uint8_t* const pb = lane.data() + sw.b * record_bytes;
      std::memcpy(tmp.data(), pa, record_bytes);
      std::memcpy(pa, pb, record_bytes);
      std::memcpy(pb, tmp.data(), record_bytes);
    }
  }
  std::memcpy(records.data(), lane.data(), records.size());
}

}  // namespace horam::shuffle
