#include "shuffle/fisher_yates.h"

#include <cstring>
#include <numeric>

#include "util/contracts.h"

namespace horam::shuffle {

permutation fisher_yates(util::random_source& rng,
                         std::span<std::uint8_t> records,
                         std::size_t record_bytes, shuffle_stats* stats) {
  expects(record_bytes > 0, "record size must be positive");
  expects(records.size() % record_bytes == 0,
          "record buffer must be a whole number of records");
  const std::uint64_t n = records.size() / record_bytes;

  // location[i] = current position of the record that started at i.
  permutation location(n);
  std::iota(location.begin(), location.end(), std::uint64_t{0});
  // origin[p] = which original record currently sits at position p.
  permutation origin(n);
  std::iota(origin.begin(), origin.end(), std::uint64_t{0});

  std::vector<std::uint8_t> tmp(record_bytes);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t a = i - 1;
    const std::uint64_t b = util::uniform_below(rng, i);
    if (a != b) {
      std::uint8_t* const pa = records.data() + a * record_bytes;
      std::uint8_t* const pb = records.data() + b * record_bytes;
      std::memcpy(tmp.data(), pa, record_bytes);
      std::memcpy(pa, pb, record_bytes);
      std::memcpy(pb, tmp.data(), record_bytes);
      std::swap(origin[a], origin[b]);
      location[origin[a]] = a;
      location[origin[b]] = b;
    }
    if (stats != nullptr) {
      ++stats->touch_ops;
      stats->bytes_moved += 2 * record_bytes;
    }
  }
  return location;
}

}  // namespace horam::shuffle
