#include "shuffle/bitonic.h"

#include <cstring>
#include <limits>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::shuffle {

void bitonic_network(
    std::uint64_t n,
    const std::function<bool(std::size_t, std::size_t)>& less,
    const std::function<void(std::size_t, std::size_t)>& swap,
    const touch_observer& observer) {
  expects(util::is_pow2(n), "bitonic network requires a power-of-two size");
  expects(static_cast<bool>(less) && static_cast<bool>(swap),
          "bitonic network needs comparison and swap callbacks");

  // Batcher's iterative bitonic sorting network, ascending order. The
  // visited (i, partner) pairs depend only on n.
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t partner = i ^ j;
        if (partner > i) {
          if (observer) {
            observer(i, partner);
          }
          const bool ascending = (i & k) == 0;
          const bool out_of_order =
              ascending ? less(partner, i) : less(i, partner);
          if (out_of_order) {
            swap(i, partner);
          }
        }
      }
    }
  }
}

std::uint64_t bitonic_compare_exchange_count(std::uint64_t n) {
  expects(n > 0, "count undefined for zero records");
  if (n == 1) {
    return 0;
  }
  const std::uint64_t m = util::next_pow2(n);
  const std::uint64_t stages = util::floor_log2(m);
  // Each (k, j) pass visits m/2 pairs; there are stages*(stages+1)/2
  // passes in total.
  return (m / 2) * stages * (stages + 1) / 2;
}

permutation bitonic_shuffle(util::random_source& rng,
                            std::span<std::uint8_t> records,
                            std::size_t record_bytes, shuffle_stats* stats,
                            const touch_observer& observer) {
  expects(record_bytes > 0, "record size must be positive");
  expects(records.size() % record_bytes == 0,
          "record buffer must be a whole number of records");
  const std::uint64_t n = records.size() / record_bytes;
  if (n <= 1) {
    return permutation(n, 0);
  }
  const std::uint64_t m = util::next_pow2(n);

  struct entry {
    std::uint64_t tag;
    std::uint64_t origin;
  };
  std::vector<entry> entries(m);
  for (std::uint64_t i = 0; i < n; ++i) {
    // 63-bit tags keep real entries strictly below the padding sentinel.
    entries[i] = entry{rng.next_u64() >> 1, i};
  }
  for (std::uint64_t i = n; i < m; ++i) {
    entries[i] = entry{std::numeric_limits<std::uint64_t>::max(), i};
  }

  // Records ride through the network alongside their tags; padding slots
  // carry zeros and are discarded after the sort.
  std::vector<std::uint8_t> lane(m * record_bytes, 0);
  std::memcpy(lane.data(), records.data(), records.size());

  std::vector<std::uint8_t> tmp(record_bytes);
  const auto less = [&](std::size_t a, std::size_t b) {
    return entries[a].tag < entries[b].tag;
  };
  const auto swap_at = [&](std::size_t a, std::size_t b) {
    std::swap(entries[a], entries[b]);
    std::uint8_t* const pa = lane.data() + a * record_bytes;
    std::uint8_t* const pb = lane.data() + b * record_bytes;
    std::memcpy(tmp.data(), pa, record_bytes);
    std::memcpy(pa, pb, record_bytes);
    std::memcpy(pb, tmp.data(), record_bytes);
  };
  const auto count_touch = [&](std::size_t a, std::size_t b) {
    if (stats != nullptr) {
      ++stats->touch_ops;
      stats->bytes_moved += 2 * record_bytes;
    }
    if (observer) {
      observer(a, b);
    }
  };

  bitonic_network(m, less, swap_at, count_touch);

  // Padding entries carry the sentinel tag, so they sort to the tail and
  // the first n lanes are exactly the shuffled real records.
  std::memcpy(records.data(), lane.data(), records.size());
  permutation pi(n);
  for (std::uint64_t position = 0; position < n; ++position) {
    invariant(entries[position].origin < n,
              "padding entry sorted into the real region");
    pi[entries[position].origin] = position;
  }
  return pi;
}

}  // namespace horam::shuffle
