// Common types for the shuffle library.
//
// The paper's shuffle cast (§3.2, §4.3):
//   * bitonic oblivious shuffle — used for the oblivious tree evict
//     (fixed compare-exchange network, data-independent trace);
//   * Waksman permutation network — classic oblivious alternative;
//   * Melbourne shuffle — the external-memory oblivious shuffle the
//     paper cites as the O(4N)-I/O cost it wants to avoid;
//   * CacheShuffle — the in-memory shuffle H-ORAM uses during the
//     group-and-partition shuffle;
//   * Fisher-Yates — the non-oblivious baseline.
//
// Permutation convention: pi[i] is the NEW position of element i
// (destination mapping); apply_permutation writes out[pi[i]] = in[i].
#ifndef HORAM_SHUFFLE_SHUFFLE_H
#define HORAM_SHUFFLE_SHUFFLE_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace horam::shuffle {

/// Destination-mapping permutation: pi[i] = new position of element i.
using permutation = std::vector<std::uint64_t>;

/// True iff `pi` is a bijection on {0, ..., pi.size()-1}.
[[nodiscard]] bool is_permutation(const permutation& pi);

/// Inverse permutation: inv[pi[i]] = i.
[[nodiscard]] permutation invert(const permutation& pi);

/// Rearranges `records` (n fixed-size records) so that record i moves to
/// position pi[i]. Not oblivious; used to materialise results.
void apply_permutation(std::span<std::uint8_t> records,
                       std::size_t record_bytes, const permutation& pi);

/// Work counters reported by the shuffle algorithms, convertible to
/// virtual time by the caller's cpu/device models.
struct shuffle_stats {
  /// Compare-exchange or switch operations executed (network shuffles).
  std::uint64_t touch_ops = 0;
  /// Record bytes moved through the algorithm.
  std::uint64_t bytes_moved = 0;
  /// Retries due to bucket overflow (randomised bucket shuffles).
  std::uint64_t retries = 0;

  void reset() noexcept { *this = shuffle_stats{}; }
};

/// Observer invoked for every index pair a network shuffle touches, in
/// order. Obliviousness tests assert this sequence depends only on n.
using touch_observer = std::function<void(std::size_t, std::size_t)>;

}  // namespace horam::shuffle

#endif  // HORAM_SHUFFLE_SHUFFLE_H
