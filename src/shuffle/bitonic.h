// Bitonic-network oblivious shuffle.
//
// Tags every record with a fresh random 64-bit value and sorts by tag
// through Batcher's bitonic network. The sequence of index pairs the
// network touches is a pure function of n — an adversary watching memory
// learns nothing about the realised permutation. This is the oblivious
// shuffle H-ORAM runs during the tree evict (§4.3.1).
//
// Cost: O(n log^2 n) compare-exchanges; every compare-exchange touches
// both records, so bytes_moved = 2 * record_bytes per operation.
#ifndef HORAM_SHUFFLE_BITONIC_H
#define HORAM_SHUFFLE_BITONIC_H

#include "shuffle/shuffle.h"

namespace horam::shuffle {

/// Obliviously shuffles `records` in place; returns the permutation
/// applied. If `observer` is set it receives every compare-exchange
/// index pair in execution order (for obliviousness tests).
permutation bitonic_shuffle(util::random_source& rng,
                            std::span<std::uint8_t> records,
                            std::size_t record_bytes,
                            shuffle_stats* stats = nullptr,
                            const touch_observer& observer = {});

/// The deterministic number of compare-exchanges the network executes
/// for n records (after internal padding to a power of two).
[[nodiscard]] std::uint64_t bitonic_compare_exchange_count(std::uint64_t n);

/// Generic bitonic sort on an index-addressable sequence: sorts
/// {0,...,n-1} positions with `less(a_pos, b_pos)` and `swap(a_pos,
/// b_pos)` callbacks. Exposed so tests can validate the network shape and
/// other layers can sort obliviously.
void bitonic_network(std::uint64_t n,
                     const std::function<bool(std::size_t, std::size_t)>& less,
                     const std::function<void(std::size_t, std::size_t)>& swap,
                     const touch_observer& observer = {});

}  // namespace horam::shuffle

#endif  // HORAM_SHUFFLE_BITONIC_H
