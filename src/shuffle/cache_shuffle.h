// CacheShuffle (Patel, Persiano, Yeo) — the K-oblivious shuffle the
// paper uses as its in-memory shuffle during the group-and-partition
// stage ("we use the cache shuffle here", §4.3.2).
//
// Simplified two-pass variant: a spray pass assigns every record an
// independent uniform bucket (written through bounded client buffers),
// then each bucket is loaded into client memory, Fisher-Yates shuffled
// and emitted. Concatenating independently-bucketed, uniformly ordered
// buckets yields a uniform permutation. With client memory K >= n the
// algorithm degenerates to a single in-memory Fisher-Yates — exactly how
// H-ORAM uses it when the partition fits in memory.
#ifndef HORAM_SHUFFLE_CACHE_SHUFFLE_H
#define HORAM_SHUFFLE_CACHE_SHUFFLE_H

#include "shuffle/melbourne.h"
#include "shuffle/shuffle.h"
#include "storage/block_store.h"

namespace horam::shuffle {

/// Tuning knobs for CacheShuffle.
struct cache_shuffle_config {
  /// Client (trusted) memory, in records. Buckets are sized to roughly
  /// half of this so a full bucket always fits.
  std::uint64_t client_memory_records = 1 << 16;
  /// Bucket physical capacity = slack * expected load.
  double bucket_slack = 1.6;
  /// Abort after this many bucket-overflow retries.
  std::uint64_t max_retries = 32;
};

/// Scratch records required for n inputs under `config`.
[[nodiscard]] std::uint64_t cache_shuffle_scratch_records(
    std::uint64_t n, const cache_shuffle_config& config);

/// Shuffles all records of `input` into `output` using at most
/// `config.client_memory_records` records of client memory; `scratch`
/// holds the spray buckets. Throws on repeated bucket overflow.
external_shuffle_result cache_shuffle(storage::block_store& input,
                                      storage::block_store& scratch,
                                      storage::block_store& output,
                                      util::random_source& rng,
                                      const cache_shuffle_config& config = {});

}  // namespace horam::shuffle

#endif  // HORAM_SHUFFLE_CACHE_SHUFFLE_H
