#include "shuffle/shuffle.h"

#include <cstring>

#include "util/contracts.h"

namespace horam::shuffle {

bool is_permutation(const permutation& pi) {
  std::vector<bool> seen(pi.size(), false);
  for (const std::uint64_t target : pi) {
    if (target >= pi.size() || seen[target]) {
      return false;
    }
    seen[target] = true;
  }
  return true;
}

permutation invert(const permutation& pi) {
  expects(is_permutation(pi), "invert requires a valid permutation");
  permutation inv(pi.size());
  for (std::uint64_t i = 0; i < pi.size(); ++i) {
    inv[pi[i]] = i;
  }
  return inv;
}

void apply_permutation(std::span<std::uint8_t> records,
                       std::size_t record_bytes, const permutation& pi) {
  expects(record_bytes > 0, "record size must be positive");
  expects(records.size() == pi.size() * record_bytes,
          "record buffer size must match permutation size");
  expects(is_permutation(pi), "apply requires a valid permutation");

  std::vector<std::uint8_t> scratch(records.size());
  for (std::uint64_t i = 0; i < pi.size(); ++i) {
    std::memcpy(scratch.data() + pi[i] * record_bytes,
                records.data() + i * record_bytes, record_bytes);
  }
  std::memcpy(records.data(), scratch.data(), records.size());
}

}  // namespace horam::shuffle
