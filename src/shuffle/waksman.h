// Benes/Waksman permutation network.
//
// Given a target permutation, the recursive construction produces a list
// of 2x2 switches whose *positions* depend only on n — the realised
// permutation hides entirely in the (secret) switch settings. Applying
// the network therefore touches a data-independent sequence of index
// pairs, like the bitonic network, but with O(n log n) switches instead
// of O(n log^2 n) compare-exchanges — the permutation must be known up
// front, which is why ORAM shuffles that draw fresh randomness per
// element often prefer tag-sorting networks.
#ifndef HORAM_SHUFFLE_WAKSMAN_H
#define HORAM_SHUFFLE_WAKSMAN_H

#include "shuffle/shuffle.h"

namespace horam::shuffle {

/// One 2x2 switch: touches positions a and b; exchanges them iff cross.
struct waksman_switch {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  bool cross = false;
};

/// A routed network realising one specific permutation.
struct waksman_network {
  /// Domain size the caller asked for.
  std::uint64_t size = 0;
  /// Power-of-two size the network actually operates on (padding moves
  /// identically under the extended permutation).
  std::uint64_t padded_size = 0;
  /// Switches in execution order.
  std::vector<waksman_switch> switches;
};

/// Routes a network for `pi` (destination mapping). O(n log n) switches.
[[nodiscard]] waksman_network build_waksman(const permutation& pi);

/// Applies the network to `records` in place. Every switch touches its
/// pair regardless of setting; `observer` sees the pair sequence.
void apply_waksman(const waksman_network& network,
                   std::span<std::uint8_t> records, std::size_t record_bytes,
                   shuffle_stats* stats = nullptr,
                   const touch_observer& observer = {});

}  // namespace horam::shuffle

#endif  // HORAM_SHUFFLE_WAKSMAN_H
